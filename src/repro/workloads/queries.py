"""Query workloads.

``traffic_workload`` builds the Section 4.3 traffic experiment: 50
data-intensive queries, each involving at least one term with a long
posting list (``author``, ``title``, ``inproceedings``, ...), submitted
from 50 distinct nodes.
"""

import random

from repro.workloads import vocab

#: the long-posting-list terms of the DBLP-like corpus
HEAVY_TERMS = ("author", "title", "inproceedings", "article", "year")

_TEMPLATES = (
    "//article//author",
    "//inproceedings//title",
    "//dblp//author",
    "//article//title",
    "//inproceedings//author",
    "//article//year",
    "//dblp//inproceedings//author",
    "//article[//title]//author",
    "//inproceedings[//year]//title",
    "//dblp//article//journal",
)


def traffic_workload(count=50, seed=0, with_keywords=True):
    """``count`` queries, each with at least one heavy term.

    Returns ``[(query_text, keyword_steps)]``; some queries add a keyword
    step (an author last name) to vary selectivity, as in a real mix."""
    rng = random.Random("%s:traffic" % (seed,))
    workload = []
    for i in range(count):
        template = _TEMPLATES[i % len(_TEMPLATES)]
        keywords = ()
        if with_keywords and rng.random() < 0.4:
            name = vocab.zipf_choice(rng, vocab.LAST_NAMES)
            template = template + "//" + name
            keywords = (name,)
        workload.append((template, keywords))
    return workload
