"""Shared vocabulary pools for the synthetic generators.

Author names and title words are drawn Zipf-like so posting-list sizes are
as skewed as in real DBLP (a few very frequent terms, a long tail) — the
skew is what makes the paper's experiments meaningful.
"""

FIRST_NAMES = [
    "Jeffrey", "Serge", "Ioana", "Michael", "David", "Maria", "Wei",
    "Anna", "Peter", "Rakesh", "Jennifer", "Hector", "Susan", "Carlo",
    "Divesh", "Nick", "Laura", "Dan", "Sophie", "Victor", "Gerhard",
    "Elisa", "Timos", "Yannis", "Moshe", "Ricardo", "Patricia", "Hans",
]

LAST_NAMES = [
    "Smith", "Chen", "Garcia", "Mueller", "Johnson", "Wang", "Kumar",
    "Silva", "Rossi", "Tanaka", "Brown", "Davis", "Martin", "Lopez",
    "Gonzalez", "Wilson", "Anderson", "Taylor", "Thomas", "Moore",
    "Jackson", "White", "Harris", "Lewis", "Robinson", "Walker", "Young",
    "Allen", "King", "Wright", "Scott", "Torres", "Nguyen", "Hill",
    "Flores", "Green", "Adams", "Nelson", "Baker", "Hall", "Rivera",
]

#: the rare author the paper's queries look for
RARE_AUTHOR = "Ullman"

TITLE_WORDS = [
    "data", "query", "processing", "distributed", "systems", "model",
    "efficient", "analysis", "optimization", "database", "parallel",
    "algorithms", "management", "performance", "scalable", "indexing",
    "xml", "semistructured", "networks", "storage", "transactions",
    "streams", "mining", "learning", "graphs", "evaluation", "adaptive",
    "semantic", "web", "services", "caching", "replication", "approximate",
    "integration", "warehouse", "views", "joins", "patterns", "trees",
    "language", "logic", "constraints", "schema", "compression", "hashing",
    "secure", "privacy", "temporal", "spatial", "probabilistic", "ranking",
]

JOURNALS = [
    "TODS", "VLDB Journal", "TKDE", "Information Systems", "SIGMOD Record",
    "JACM", "Acta Informatica", "TCS", "IPL", "CACM",
]

CONFERENCES = [
    "SIGMOD", "VLDB", "ICDE", "PODS", "EDBT", "ICDT", "CIKM", "WWW",
    "KDD", "SODA",
]

ABSTRACT_WORDS = TITLE_WORDS + [
    "we", "propose", "novel", "approach", "experiments", "show", "results",
    "improve", "problem", "present", "study", "interface", "system",
    "implementation", "framework", "techniques", "cost", "benchmark",
]


def zipf_choice(rng, pool, skew=1.1):
    """Pick from ``pool`` with a Zipf-like bias toward early entries."""
    n = len(pool)
    # inverse-CDF sampling of a truncated zeta-ish distribution
    u = rng.random()
    index = int(n * (u ** (skew + 1.0)))
    return pool[min(index, n - 1)]
