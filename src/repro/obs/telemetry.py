"""Serving-clock time-series: ring-buffered samples of a live run.

One-shot snapshots (``repro stats``) and end-of-run aggregates (the
metrics registry) cannot show a p99 spike forming or a hot-key promotion
landing — behaviour of the serving loop and the load balancer only makes
sense *over time*.  This module samples that state onto the serving
engine's own simulated clock:

* :class:`RingBuffer` / :class:`Series` — fixed-capacity ``(t, value)``
  rings with windowed min/mean/max/p99 aggregation;
* :class:`TelemetrySampler` — registered probes (gauges read directly,
  rates as deltas of cumulative counters per interval) sampled at every
  multiple of ``interval_s`` the serving clock crosses.

There is **zero wall clock** here.  The sampler is driven by
:meth:`advance_to` from the serving engine's admission loop (next to the
rebalance tick) and by :meth:`finish` once the run's makespan is known,
so every sample instant, and therefore every series, is a deterministic
function of the workload and seed.  Probes only *read* state — enabling
telemetry changes no answer, simulated second, or metered byte (the
differential test in ``tests/test_telemetry.py`` asserts byte-identical
reports and meter snapshots on Pastry and Chord).
"""

from repro.obs.metrics import quantile_exact

#: float-comparison slack for simulated instants
_EPS = 1e-9

#: default sampling interval (simulated seconds)
DEFAULT_INTERVAL_S = 0.1

#: default per-series capacity; at the default interval this covers runs
#: two orders of magnitude longer than the committed serving benchmarks
DEFAULT_CAPACITY = 512


class RingBuffer:
    """Fixed-capacity ring of ``(t_s, value)`` samples, oldest evicted."""

    __slots__ = ("capacity", "_items", "_head", "dropped")

    def __init__(self, capacity):
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1, got %r" % (capacity,))
        self.capacity = int(capacity)
        self._items = []
        self._head = 0  # index of the oldest sample once full
        self.dropped = 0  # samples evicted by capacity (honesty counter)

    def append(self, t_s, value):
        if len(self._items) < self.capacity:
            self._items.append((t_s, value))
        else:
            self._items[self._head] = (t_s, value)
            self._head = (self._head + 1) % self.capacity
            self.dropped += 1

    def items(self):
        """Samples in time order (oldest first)."""
        return self._items[self._head:] + self._items[: self._head]

    def __len__(self):
        return len(self._items)

    def __iter__(self):
        return iter(self.items())


class Series:
    """One named time-series over a :class:`RingBuffer`."""

    __slots__ = ("name", "ring")

    def __init__(self, name, capacity=DEFAULT_CAPACITY):
        self.name = name
        self.ring = RingBuffer(capacity)

    def sample(self, t_s, value):
        self.ring.append(t_s, value)

    def items(self):
        return self.ring.items()

    def values(self):
        return [v for _, v in self.ring.items()]

    def last(self):
        items = self.ring.items()
        return items[-1] if items else None

    def window(self, t0_s, t1_s):
        """Samples with ``t0_s <= t < t1_s`` (end-exclusive)."""
        return [
            (t, v)
            for t, v in self.ring.items()
            if t0_s - _EPS <= t < t1_s - _EPS
        ]

    def window_stats(self, t0_s, t1_s):
        """min/mean/max/p99 over the window, or None when it is empty."""
        values = [v for _, v in self.window(t0_s, t1_s)]
        if not values:
            return None
        ordered = sorted(values)
        return {
            "t0_s": t0_s,
            "t1_s": t1_s,
            "count": len(ordered),
            "min": ordered[0],
            "mean": sum(ordered) / len(ordered),
            "max": ordered[-1],
            "p99": quantile_exact(ordered, 0.99),
        }

    def windows(self, window_s, until_s=None):
        """Consecutive :meth:`window_stats` covering the whole series."""
        items = self.ring.items()
        if not items:
            return []
        end = until_s if until_s is not None else items[-1][0] + _EPS
        out = []
        t0 = items[0][0]
        while t0 < end:
            stats = self.window_stats(t0, t0 + window_s)
            if stats is not None:
                out.append(stats)
            t0 += window_s
        return out

    def to_dict(self):
        items = self.ring.items()
        return {
            "name": self.name,
            "samples": [[t, v] for t, v in items],
            "dropped": self.ring.dropped,
        }


class TelemetrySampler:
    """Probes sampled at fixed serving-clock intervals; see module doc.

    Two probe kinds:

    * ``add_gauge(name, fn)`` — ``fn()`` read directly at each instant
      (queue depth, hot-key count, in-flight queries);
    * ``add_rate(name, fn)`` — ``fn()`` must be a cumulative counter; the
      series records ``(current - previous) / interval_s`` per instant
      (bytes on the wire, per-peer served read/write bytes from the
      :class:`~repro.balance.ledger.LoadLedger`).

    The serving engine calls :meth:`advance_to` at each admission instant
    and :meth:`finish` after the final shared-schedule run, which takes
    the closing sample at the makespan, back-fills the exact
    ``inflight_queries`` series from the finished records, and (when a
    tracer is attached) emits one instant span per sample so Perfetto
    traces show the sampling timeline alongside the queries.
    """

    def __init__(
        self,
        interval_s=DEFAULT_INTERVAL_S,
        capacity=DEFAULT_CAPACITY,
        slo=None,
    ):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.interval_s = float(interval_s)
        self.capacity = int(capacity)
        self.slo = slo  # optional repro.obs.slo.SLOTracker
        self.series = {}
        self._gauges = {}  # name -> fn
        self._rates = {}  # name -> (fn, last_value)
        self._next_t = 0.0
        self._instants = []  # every boundary sampled so far, in order
        self.samples_taken = 0
        self.finished = False
        self.makespan_s = 0.0

    # -- probe registration ------------------------------------------------

    def _series(self, name):
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = Series(name, self.capacity)
        return series

    def add_gauge(self, name, fn):
        self._gauges[name] = fn
        self._series(name)
        return self

    def add_rate(self, name, fn):
        self._rates[name] = (fn, fn())
        self._series(name)
        return self

    # -- sampling clock ----------------------------------------------------

    def _take_sample(self, t_s):
        for name, fn in self._gauges.items():
            self._series(name).sample(t_s, fn())
        for name, (fn, last) in self._rates.items():
            current = fn()
            self._series(name).sample(
                t_s, (current - last) / self.interval_s
            )
            self._rates[name] = (fn, current)
        self._instants.append(t_s)
        self.samples_taken += 1

    def advance_to(self, now_s):
        """Sample every interval boundary the clock has crossed.

        Probes read the state visible *at the call* (sample-and-hold, the
        same contract a real scraper has); boundaries are stamped at their
        exact simulated instants so series align across runs."""
        while self._next_t <= now_s + _EPS:
            self._take_sample(self._next_t)
            self._next_t += self.interval_s

    def finish(self, result, tracer=None, scheduler=None):
        """Close out a serving run: final samples, SLO feed, trace events.

        ``result`` is the engine's :class:`ServingResult`.  Per-query
        finish times are provisional while the run is live (later
        admissions re-contend the shared timeline), so the completion-fed
        series — exact in-flight counts, shared-schedule concurrency, and
        the SLO error budget — are derived here, from the *final*
        schedule."""
        self.makespan_s = result.makespan_s
        self.advance_to(self.makespan_s)
        # exact in-flight profile from the final records: per-query finish
        # times are provisional mid-run, so this series is only derivable
        # once the final shared schedule exists
        inflight = self.series["inflight_queries"] = Series(
            "inflight_queries", self.capacity
        )
        instants = self._instants[-self.capacity:] or [0.0]
        for t in instants:
            count = sum(
                1
                for q in result.queries
                if q.admit_s <= t + _EPS and q.finish_s > t + _EPS
            )
            inflight.sample(t, count)
        if scheduler is not None:
            running = self.series["running_tasks"] = Series(
                "running_tasks", self.capacity
            )
            for t in instants:
                running.sample(t, len(scheduler.running_at(t)))
        if self.slo is not None:
            for q in sorted(result.queries, key=lambda q: (q.finish_s, q.seq)):
                self.slo.observe(q.finish_s, q.latency_s)
        self.finished = True
        if tracer is not None:
            for t in instants:
                tracer.add(
                    "telemetry:sample",
                    "telemetry",
                    "telemetry",
                    t,
                    0.0,
                    args={
                        name: self._value_at(name, t)
                        for name in sorted(self.series)
                    },
                )

    def _value_at(self, name, t_s):
        for t, v in self.series[name].items():
            if abs(t - t_s) <= _EPS:
                return v
        return None

    # -- export ------------------------------------------------------------

    def to_dict(self):
        from repro.obs.report import TELEMETRY_SCHEMA_VERSION

        payload = {
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "interval_s": self.interval_s,
            "makespan_s": self.makespan_s,
            "samples_taken": self.samples_taken,
            "finished": self.finished,
            "series": {
                name: self.series[name].to_dict()
                for name in sorted(self.series)
            },
        }
        if self.slo is not None:
            payload["slo"] = self.slo.to_dict()
        return payload


def install_standard_probes(sampler, system, engine=None):
    """Wire the stock probe set for one ``KadopNetwork`` deployment.

    Global gauges: admission queue depth and drops, coalescer hits,
    hot-key extra copies, rebalancer migrations.  Global rates: total
    bytes on the wire.  Per-peer rates: served read and applied write
    bytes from the load ledger.  All read-only.
    """
    meter = system.net.meter
    sampler.add_rate("wire_bytes_per_s", lambda: meter.bytes())
    balance = getattr(system, "balance", None)
    if balance is not None:
        ledger = balance.ledger
        sampler.add_gauge("hot_keys", lambda: len(balance.extras))
        sampler.add_gauge("extra_copies", lambda: balance.extra_copies)
        sampler.add_gauge(
            "rebalancer_migrations", lambda: balance.rebalancer.migrations
        )
        for peer in system.peers:
            idx = peer.index
            sampler.add_rate(
                "peer_read_bytes_per_s{peer=%d}" % idx,
                lambda i=idx: ledger.peer_read_bytes.get(i, 0),
            )
            sampler.add_rate(
                "peer_write_bytes_per_s{peer=%d}" % idx,
                lambda i=idx: ledger.peer_write_bytes.get(i, 0),
            )
    if engine is not None:
        sampler.add_gauge("queue_depth", engine.queue_depth)
        sampler.add_gauge("admitted_queries", engine.admitted_count)
        sampler.add_gauge("admission_drops", engine.dropped_count)
        sampler.add_gauge("coalescer_hits", engine.coalescer_hits)
    return sampler
