"""Profile reports over a recorded trace: where did simulated time go?

``repro profile`` prints two tables built here:

* **top spans by self-time** — a span's *self* time is its duration minus
  the time covered by its child spans, so an index phase that spent all of
  its seconds inside DHT fetches shows up near zero and the fetches
  themselves rank;
* **per-resource utilization** — busy seconds over capacity-seconds for
  every scheduler resource (egress links, the consumer's ingress), from
  the counters :func:`repro.obs.trace.observe_schedule` maintains.
"""


def self_times(spans):
    """``{span_id: self_time_s}`` — duration minus children's durations.

    Children are credited to their explicit ``parent_id``; a child longer
    than its parent (possible for max-combined phases) clamps at zero.
    """
    child_time = {}
    for span in spans:
        if span.parent_id is not None:
            child_time[span.parent_id] = (
                child_time.get(span.parent_id, 0.0) + span.duration_s
            )
    return {
        span.span_id: max(0.0, span.duration_s - child_time.get(span.span_id, 0.0))
        for span in spans
    }


def aggregate_spans(tracer):
    """Every ``(name, cat, count, total_self_s, total_s)`` row, sorted by
    descending self-time — :func:`top_spans` without the truncation."""
    selfs = self_times(tracer.spans)
    by_name = {}
    for span in tracer.spans:
        key = (span.name, span.cat)
        count, self_s, total_s = by_name.get(key, (0, 0.0, 0.0))
        by_name[key] = (
            count + 1,
            self_s + selfs[span.span_id],
            total_s + span.duration_s,
        )
    rows = [
        (name, cat, count, self_s, total_s)
        for (name, cat), (count, self_s, total_s) in by_name.items()
    ]
    rows.sort(key=lambda r: (-r[3], r[0]))
    return rows


def top_spans(tracer, n=12):
    """Aggregate spans by name; top ``n`` by total self-time.

    Returns ``[(name, cat, count, total_self_s, total_s)]`` sorted by
    descending self-time.
    """
    return aggregate_spans(tracer)[:n]


def phase_totals(tracer):
    """Total self-time per span category — the span-level cost breakdown.

    This is the number EXPERIMENTS.md cites: e.g. how many simulated
    seconds of a workload went to DHT transfers vs. scheduler-task
    transfers vs. document-peer evaluation.
    """
    selfs = self_times(tracer.spans)
    totals = {}
    for span in tracer.spans:
        totals[span.cat] = totals.get(span.cat, 0.0) + selfs[span.span_id]
    return dict(sorted(totals.items()))


def format_profile(tracer, metrics=None, top=12):
    """The ``repro profile`` report as text."""
    lines = []
    lines.append(
        "trace: %d queries, %d spans" % (tracer.queries, len(tracer.spans))
    )
    lines.append("")
    lines.append("top spans by simulated self-time:")
    lines.append(
        "%10s %10s %6s  %-8s %s" % ("self (ms)", "total (ms)", "count", "cat", "name")
    )
    rows = aggregate_spans(tracer)
    for name, cat, count, self_s, total_s in rows[:top]:
        lines.append(
            "%10.3f %10.3f %6d  %-8s %s"
            % (self_s * 1e3, total_s * 1e3, count, cat, name)
        )
    if len(rows) > top:
        # the table above is a cut, not the whole story — say so, and say
        # how much self-time the cut left out
        rest = rows[top:]
        rest_spans = sum(r[2] for r in rest)
        rest_self = sum(r[3] for r in rest)
        whole_self = sum(r[3] for r in rows)
        share = 100.0 * rest_self / whole_self if whole_self else 0.0
        lines.append(
            "... %d more span groups (%d spans), %.1f%% of self-time"
            % (len(rest), rest_spans, share)
        )
    totals = phase_totals(tracer)
    if totals:
        lines.append("")
        lines.append("self-time by category:")
        for cat, seconds in sorted(totals.items(), key=lambda kv: -kv[1]):
            lines.append("%10.3f ms  %s" % (seconds * 1e3, cat))
    if metrics is not None:
        table = metrics.utilization()
        if table:
            lines.append("")
            lines.append("per-resource utilization (scheduler runs):")
            lines.append(
                "%10s %12s %12s  %s" % ("busy (ms)", "capacity (ms)", "util", "resource")
            )
            for resource in sorted(table):
                busy_s, capacity_s, ratio = table[resource]
                lines.append(
                    "%10.3f %12.3f %11.1f%%  %s"
                    % (busy_s * 1e3, capacity_s * 1e3, 100.0 * ratio, resource)
                )
        snap = metrics.snapshot()
        wait = snap["histograms"].get("scheduler_queue_wait_s")
        if wait and wait["count"]:
            lines.append("")
            lines.append(
                "queue wait: %d tasks, %.3f ms total, mean %.3f ms"
                % (
                    wait["count"],
                    wait["sum"] * 1e3,
                    wait["sum"] / wait["count"] * 1e3,
                )
            )
    return "\n".join(lines)
