"""Simulated-time span tracing with Chrome trace-event export.

A :class:`Span` is an interval of *simulated* seconds — there is no wall
clock anywhere in this module.  The system computes durations (transfer
times, scheduler makespans, join CPU); the tracer only records where those
seconds sit on a per-query timeline, so a trace is exactly as deterministic
as the simulation itself.

Timeline model: the tracer keeps a global cursor.  Each query opens a root
span at the cursor and lays its phases out at relative offsets (the query
context's ``base``/``offset``); when the query ends, the cursor advances by
the query's simulated response time, so consecutive queries appear
back-to-back in Perfetto rather than stacked at t=0.

Export (:func:`to_chrome_trace`) maps spans onto the Chrome trace-event
JSON format: one ``ph: "X"`` complete event per span, ``ts``/``dur`` in
microseconds of simulated time, tracks (``tid``) per peer / link /
query-phase lane.  The result loads in ``chrome://tracing`` and Perfetto.
"""

import json
from itertools import count

#: trailing idle gap inserted between consecutive queries on the timeline,
#: in simulated seconds — purely cosmetic, keeps query roots visually apart
QUERY_GAP_S = 0.0


class Span:
    """One simulated-time interval with attributes.

    ``track`` is the display lane ("query", "peer:3", "egress:5", ...);
    ``cat`` the coarse kind ("phase", "dht", "dht-hop", "task", "wait",
    "doc", "view", ...); ``args`` carries byte/hop/peer attributes.
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "cat",
        "track",
        "start_s",
        "duration_s",
        "args",
    )

    def __init__(self, span_id, parent_id, name, cat, track, start_s, duration_s, args):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.cat = cat
        self.track = track
        self.start_s = start_s
        self.duration_s = duration_s
        self.args = args

    @property
    def end_s(self):
        return self.start_s + self.duration_s

    def __repr__(self):
        return "Span(%r, %s, %.6g+%.6gs)" % (
            self.name,
            self.track,
            self.start_s,
            self.duration_s,
        )


class QueryContext:
    """The active query's position on the global timeline.

    ``base``       absolute start of the query (simulated seconds);
    ``offset``     current phase offset *within* the query — DHT ops and
                   scheduler observations anchor to ``base + offset``;
    ``root_id``    span id of the query's root span;
    ``parent_id``  span id new child spans should attach to.
    """

    __slots__ = ("base", "offset", "root_id", "parent_id", "name")

    def __init__(self, base, root_id, name):
        self.base = base
        self.offset = 0.0
        self.root_id = root_id
        self.parent_id = root_id
        self.name = name

    def now(self):
        return self.base + self.offset


class Tracer:
    """Collects spans; strictly observational (never changes results)."""

    def __init__(self):
        self.spans = []
        self._ids = count(1)
        self._cursor = 0.0
        self._ctx = None
        self.queries = 0

    # -- recording --------------------------------------------------------------

    @property
    def active(self):
        """True while a query context is open (ops should record spans)."""
        return self._ctx is not None

    @property
    def context(self):
        return self._ctx

    def add(self, name, cat, track, start_s, duration_s, args=None, parent=None):
        """Record one span; returns its id (usable as ``parent``)."""
        span_id = next(self._ids)
        self.spans.append(
            Span(span_id, parent, name, cat, track, start_s, duration_s, args or {})
        )
        return span_id

    def set_duration(self, span_id, duration_s, args=None):
        """Patch a span's duration (and extra args) once known.

        Phase roots are opened before their children so the children can
        attach to them; the duration only exists after the phase closes.
        """
        for span in reversed(self.spans):
            if span.span_id == span_id:
                span.duration_s = duration_s
                if args:
                    span.args.update(args)
                return
        raise KeyError("no span with id %r" % (span_id,))

    def seek(self, instant_s):
        """Move the timeline cursor to an absolute simulated instant.

        Concurrent serving opens each query's root span at its *admission*
        time rather than after the previous query closed; the serving
        engine seeks before each ``begin_query`` so overlapping queries
        land where they actually ran on the shared timeline."""
        if instant_s < 0:
            raise ValueError("cannot seek to negative time %r" % (instant_s,))
        self._cursor = float(instant_s)

    def begin_query(self, name, args=None):
        """Open a query root span at the timeline cursor."""
        root_id = self.add(name, "query", "query", self._cursor, 0.0, args=args)
        self._ctx = QueryContext(self._cursor, root_id, name)
        return self._ctx

    def end_query(self, ctx, duration_s, args=None):
        """Close the query: fix the root duration, advance the cursor.

        The cursor only ever moves forward here: when queries overlap (the
        serving engine seeks backward to admit a query at an earlier
        instant), a short query ending inside a longer one's window must
        not rewind the timeline for whoever begins next."""
        for span in reversed(self.spans):
            if span.span_id == ctx.root_id:
                span.duration_s = duration_s
                if args:
                    span.args.update(args)
                break
        self._cursor = max(self._cursor, ctx.base + duration_s + QUERY_GAP_S)
        self.queries += 1
        if self._ctx is ctx:
            self._ctx = None

    # -- convenience ------------------------------------------------------------

    def spans_by_cat(self, cat):
        return [s for s in self.spans if s.cat == cat]

    def children_of(self, span_id):
        return [s for s in self.spans if s.parent_id == span_id]

    def __len__(self):
        return len(self.spans)


def observe_schedule(tracer, metrics, scheduler, rel_base=0.0, parent=None):
    """Record one finished :class:`~repro.sim.tasks.Scheduler` run.

    Emits a span per task (on the task's egress-link track, or "ingress")
    plus a ``wait`` span for any queue time — the gap between a task
    becoming ready and actually starting, attributed to the resource that
    had no free slot.  Feeds the queue-wait histogram and per-resource
    busy/capacity counters (utilization = busy / (capacity * makespan)).

    Reads task ``start``/``finish``/``ready``/``blocked_on`` left behind by
    ``Scheduler.run``; it never mutates the scheduler, so calling it (or
    not) cannot change any simulated result.
    """
    tasks = scheduler.tasks
    if not tasks:
        return
    makespan = max((t.finish for t in tasks if t.finish is not None), default=0.0)
    ctx = tracer.context if tracer is not None else None
    busy = {}
    for task in tasks:
        if task.start is None or task.finish is None:
            continue  # failed run: nothing trustworthy to record
        wait = (task.start - task.ready) if task.ready is not None else 0.0
        for resource in task.resources:
            busy[resource] = busy.get(resource, 0.0) + task.duration
        if metrics is not None:
            from repro.obs.metrics import QUEUE_WAIT_BUCKETS_S

            metrics.histogram(
                "scheduler_queue_wait_s", QUEUE_WAIT_BUCKETS_S
            ).observe(wait)
        if ctx is not None:
            track = next(
                (r for r in task.resources if r.startswith("egress")),
                task.resources[0] if task.resources else "scheduler",
            )
            start_abs = ctx.base + rel_base + task.start
            attach = parent if parent is not None else ctx.parent_id
            if wait > 0:
                # the wait span lives on the track of the resource that
                # actually had no free slot (the overloaded link/CPU), not
                # the task's nominal egress track — so hot-peer congestion
                # is visible as a pile-up on that peer's own track
                tracer.add(
                    "wait:%s" % task.name,
                    "wait",
                    task.blocked_on if task.blocked_on else track,
                    start_abs - wait,
                    wait,
                    args={"blocked_on": task.blocked_on},
                    parent=attach,
                )
            tracer.add(
                task.name,
                "task",
                track,
                start_abs,
                task.duration,
                args={
                    "resources": list(task.resources),
                    "queue_wait_s": wait,
                },
                parent=attach,
            )
    if metrics is not None:
        for resource, capacity in scheduler.capacities().items():
            metrics.counter("resource_busy_s", resource=resource).inc(
                busy.get(resource, 0.0)
            )
            metrics.counter("resource_capacity_s", resource=resource).inc(
                capacity * makespan
            )


# -- Chrome trace-event export ------------------------------------------------

#: simulated seconds -> trace-event microseconds
_US = 1_000_000


def to_chrome_trace(tracer, process_name="kadop-sim"):
    """Render the tracer's spans as a Chrome trace-event JSON object.

    Every event (including the ``ph: "M"`` metadata that names tracks)
    carries the full required key set — ``name/ph/ts/dur/pid/tid`` — and
    events are sorted by ``ts``, so the output passes
    :func:`validate_trace` and loads in Perfetto / ``chrome://tracing``.
    """
    tracks = sorted({span.track for span in tracer.spans})
    tids = {track: i + 1 for i, track in enumerate(tracks)}
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "dur": 0,
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for track in tracks:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0,
                "dur": 0,
                "pid": 1,
                "tid": tids[track],
                "args": {"name": track},
            }
        )
    spans = sorted(tracer.spans, key=lambda s: (s.start_s, s.span_id))
    for span in spans:
        events.append(
            {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": round(span.start_s * _US, 3),
                "dur": round(span.duration_s * _US, 3),
                "pid": 1,
                "tid": tids[span.track],
                "args": dict(span.args, span_id=span.span_id),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer, path, process_name="kadop-sim"):
    """Write :func:`to_chrome_trace` output to ``path``; returns #events."""
    trace = to_chrome_trace(tracer, process_name=process_name)
    with open(path, "w") as handle:
        json.dump(trace, handle)
    return len(trace["traceEvents"])


_REQUIRED_KEYS = ("name", "ph", "ts", "dur", "pid", "tid")


def validate_trace(obj):
    """Check trace-event JSON structure; returns the event count.

    Enforces exactly what the CI smoke step promises: every event has the
    required keys, timestamps are non-negative and monotonically
    non-decreasing in file order, durations are non-negative.
    """
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        raise ValueError("trace must be an object with a 'traceEvents' array")
    events = obj["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty array")
    last_ts = 0
    for i, event in enumerate(events):
        for key in _REQUIRED_KEYS:
            if key not in event:
                raise ValueError("event %d missing required key %r" % (i, key))
        ts, dur = event["ts"], event["dur"]
        if ts < 0 or dur < 0:
            raise ValueError("event %d has negative ts/dur: %r/%r" % (i, ts, dur))
        if ts < last_ts:
            raise ValueError(
                "timestamps not monotonic at event %d: %r < %r" % (i, ts, last_ts)
            )
        last_ts = ts
    return len(events)


def validate_trace_file(path):
    """Validate a trace JSON file on disk; returns the event count."""
    with open(path) as handle:
        return validate_trace(json.load(handle))
