"""Observability for the KadoP stack: tracing, metrics, and telemetry.

The paper's results are *decompositions* of query cost — index phase vs.
document phase, hops, per-strategy data volume.  This package records the
same decompositions live, per query, instead of as end-of-run aggregates:

:mod:`repro.obs.trace`
    a :class:`Tracer` of simulated-time spans (no wall clock anywhere) and
    an exporter to Chrome trace-event JSON, openable in Perfetto or
    ``chrome://tracing``;
:mod:`repro.obs.metrics`
    a :class:`MetricsRegistry` of counters, gauges, and fixed-bucket
    histograms with a ``snapshot()``/``to_json()`` API, plus the exact
    sample-rank quantile helpers every percentile in the repo goes
    through;
:mod:`repro.obs.profile`
    text reports: top spans by simulated self-time and per-resource
    utilization;
:mod:`repro.obs.telemetry`
    ring-buffered time-series of a serving run sampled on the serving
    clock (queue depth, in-flight queries, per-peer byte rates, ...);
:mod:`repro.obs.slo`
    a latency SLO tracker with windowed error-budget burn rates, and a
    rule-based diagnostics engine over the telemetry series;
:mod:`repro.obs.explain`
    per-query EXPLAIN ANALYZE: simulated time and bytes attributed to
    phase → peer → key from the span tree, reconciled exactly against
    the traffic meter and the query report;
:mod:`repro.obs.report`
    schema-versioned JSON export/validation plus terminal (``repro
    top``) and self-contained HTML renderings of a telemetry payload.

Tracing and telemetry are strictly observational: enabling either must
not change a single answer, simulated second, or metered byte (asserted
by the differential tests in ``tests/test_obs.py`` and
``tests/test_telemetry.py``).
"""

from repro.obs.metrics import (
    BYTES_BUCKETS,
    HOP_BUCKETS,
    QUEUE_WAIT_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantile_exact,
    quantile_rank,
)
from repro.obs.trace import (
    Span,
    Tracer,
    observe_schedule,
    to_chrome_trace,
    validate_trace,
    validate_trace_file,
    write_chrome_trace,
)
from repro.obs.profile import (
    aggregate_spans,
    format_profile,
    phase_totals,
    top_spans,
)
from repro.obs.telemetry import (
    DEFAULT_CAPACITY,
    DEFAULT_INTERVAL_S,
    RingBuffer,
    Series,
    TelemetrySampler,
    install_standard_probes,
)
from repro.obs.slo import Finding, SLOTracker, diagnose
from repro.obs.explain import (
    ExplainReport,
    build_explain,
    explain_query,
)
from repro.obs.report import (
    EXPLAIN_SCHEMA_VERSION,
    STATS_SCHEMA_VERSION,
    TELEMETRY_SCHEMA_VERSION,
    check_schema_version,
    render_top,
    sparkline,
    to_html,
    validate_telemetry,
    write_html,
    write_json,
)

__all__ = [
    "BYTES_BUCKETS",
    "DEFAULT_CAPACITY",
    "DEFAULT_INTERVAL_S",
    "EXPLAIN_SCHEMA_VERSION",
    "ExplainReport",
    "Finding",
    "HOP_BUCKETS",
    "QUEUE_WAIT_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RingBuffer",
    "SLOTracker",
    "STATS_SCHEMA_VERSION",
    "Series",
    "Span",
    "TELEMETRY_SCHEMA_VERSION",
    "TelemetrySampler",
    "Tracer",
    "aggregate_spans",
    "build_explain",
    "check_schema_version",
    "diagnose",
    "explain_query",
    "format_profile",
    "install_standard_probes",
    "observe_schedule",
    "phase_totals",
    "quantile_exact",
    "quantile_rank",
    "render_top",
    "sparkline",
    "to_chrome_trace",
    "to_html",
    "top_spans",
    "validate_telemetry",
    "validate_trace",
    "validate_trace_file",
    "write_chrome_trace",
    "write_html",
    "write_json",
]
