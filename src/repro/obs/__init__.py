"""Observability for the KadoP stack: tracing, metrics, and profiles.

The paper's results are *decompositions* of query cost — index phase vs.
document phase, hops, per-strategy data volume.  This package records the
same decompositions live, per query, instead of as end-of-run aggregates:

:mod:`repro.obs.trace`
    a :class:`Tracer` of simulated-time spans (no wall clock anywhere) and
    an exporter to Chrome trace-event JSON, openable in Perfetto or
    ``chrome://tracing``;
:mod:`repro.obs.metrics`
    a :class:`MetricsRegistry` of counters, gauges, and fixed-bucket
    histograms with a ``snapshot()``/``to_json()`` API;
:mod:`repro.obs.profile`
    text reports: top spans by simulated self-time and per-resource
    utilization.

Tracing is strictly observational: enabling it must not change a single
answer, simulated second, or metered byte (asserted by the differential
test in ``tests/test_obs.py``).
"""

from repro.obs.metrics import (
    BYTES_BUCKETS,
    HOP_BUCKETS,
    QUEUE_WAIT_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    Span,
    Tracer,
    observe_schedule,
    to_chrome_trace,
    validate_trace,
    validate_trace_file,
    write_chrome_trace,
)
from repro.obs.profile import format_profile, phase_totals, top_spans

__all__ = [
    "BYTES_BUCKETS",
    "HOP_BUCKETS",
    "QUEUE_WAIT_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "format_profile",
    "observe_schedule",
    "phase_totals",
    "to_chrome_trace",
    "top_spans",
    "validate_trace",
    "validate_trace_file",
    "write_chrome_trace",
]
