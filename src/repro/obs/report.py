"""Telemetry report surfacing: schema versions, validation, text/HTML.

Telemetry payloads outlive the process that produced them — they are
written to JSON, diffed in CI, and opened in a browser.  Everything
crossing that boundary carries a ``schema_version`` so a reader can
refuse payloads it does not understand instead of misrendering them:

* :data:`TELEMETRY_SCHEMA_VERSION` — ``TelemetrySampler.to_dict``
  payloads (series + SLO + findings);
* :data:`STATS_SCHEMA_VERSION` — ``repro stats --json`` payloads;
* :data:`EXPLAIN_SCHEMA_VERSION` — ``ExplainReport.to_dict`` payloads.

:func:`check_schema_version` / :func:`validate_telemetry` are the
gatekeepers; :func:`render_top` is the terminal view behind ``repro
top`` (unicode sparklines, SLO status, findings); :func:`to_html` emits
a self-contained single-file report (inline SVG sparklines, no external
assets) for sharing a run.
"""

import json

#: version of the TelemetrySampler.to_dict payload
TELEMETRY_SCHEMA_VERSION = 1

#: version of the ``repro stats --json`` payload
STATS_SCHEMA_VERSION = 1

#: version of the ExplainReport.to_dict payload
EXPLAIN_SCHEMA_VERSION = 1

#: every schema this build can read, by payload kind
KNOWN_SCHEMAS = {
    "telemetry": (TELEMETRY_SCHEMA_VERSION,),
    "stats": (STATS_SCHEMA_VERSION,),
    "explain": (EXPLAIN_SCHEMA_VERSION,),
}

_SPARK_GLYPHS = " ▁▂▃▄▅▆▇█"


def check_schema_version(payload, kind):
    """Reject payloads this build cannot read, with a message that says
    what was found, what is supported, and what to do about it."""
    if kind not in KNOWN_SCHEMAS:
        raise ValueError("unknown payload kind %r" % (kind,))
    if not isinstance(payload, dict):
        raise ValueError(
            "%s payload must be a JSON object, got %s"
            % (kind, type(payload).__name__)
        )
    version = payload.get("schema_version")
    supported = KNOWN_SCHEMAS[kind]
    if version is None:
        raise ValueError(
            "%s payload has no schema_version field; this build reads "
            "version(s) %s — was it produced by a pre-telemetry build?"
            % (kind, ", ".join(str(v) for v in supported))
        )
    if version not in supported:
        raise ValueError(
            "unsupported %s schema_version %r; this build reads "
            "version(s) %s — regenerate the report with a matching build"
            % (kind, version, ", ".join(str(v) for v in supported))
        )
    return version


def validate_telemetry(payload):
    """Schema-validate one telemetry JSON payload; returns it unchanged.

    Checks the version gate plus the structural invariants every reader
    leans on: a series table whose samples are ``[t, value]`` pairs with
    non-decreasing timestamps, and (when present) an SLO block with
    windows inside the run."""
    check_schema_version(payload, "telemetry")
    series = payload.get("series")
    if not isinstance(series, dict):
        raise ValueError("telemetry payload has no series table")
    for name, body in series.items():
        samples = body.get("samples")
        if not isinstance(samples, list):
            raise ValueError("series %r has no samples list" % (name,))
        prev = None
        for sample in samples:
            if not (isinstance(sample, list) and len(sample) == 2):
                raise ValueError(
                    "series %r sample %r is not a [t, value] pair"
                    % (name, sample)
                )
            t = sample[0]
            if prev is not None and t < prev:
                raise ValueError(
                    "series %r timestamps go backwards at t=%r" % (name, t)
                )
            prev = t
    slo = payload.get("slo")
    if slo is not None:
        for field in ("objective_s", "target", "windows"):
            if field not in slo:
                raise ValueError("slo block is missing %r" % (field,))
    return payload


def write_json(payload, path):
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


# -- terminal rendering (repro top) ----------------------------------------


def sparkline(values, width=32):
    """Unicode sparkline of ``values``, resampled to ``width`` columns."""
    if not values:
        return ""
    if len(values) > width:
        # average each column's bucket so spikes are not silently skipped
        out = []
        for col in range(width):
            lo = col * len(values) // width
            hi = max(lo + 1, (col + 1) * len(values) // width)
            out.append(sum(values[lo:hi]) / (hi - lo))
        values = out
    lo, hi = min(values), max(values)
    span = hi - lo
    glyphs = _SPARK_GLYPHS
    if span <= 0:
        return glyphs[1] * len(values)
    scale = len(glyphs) - 2
    return "".join(
        glyphs[1 + int((v - lo) / span * scale)] for v in values
    )


def _series_row(name, body, width):
    values = [v for _, v in body["samples"]]
    if not values:
        return "  %-34s (no samples)" % (name,)
    ordered = sorted(values)
    rank = max(1, -(-99 * len(ordered) // 100))  # ceil without math import
    tail = " (+%d evicted)" % body["dropped"] if body.get("dropped") else ""
    return "  %-34s %s  last %10.1f  mean %10.1f  p99 %10.1f%s" % (
        name,
        sparkline(values, width),
        values[-1],
        sum(values) / len(values),
        ordered[min(rank, len(ordered)) - 1],
        tail,
    )


def render_top(payload, findings=None, width=32):
    """The ``repro top`` terminal view of one telemetry payload."""
    validate_telemetry(payload)
    lines = [
        "telemetry: %d samples @ %.3fs interval over %.3fs (simulated)"
        % (
            payload["samples_taken"],
            payload["interval_s"],
            payload["makespan_s"],
        ),
        "",
        "series:",
    ]
    series = payload["series"]
    for name in sorted(series):
        lines.append(_series_row(name, series[name], width))
    slo = payload.get("slo")
    if slo is not None:
        lines.append("")
        status = "OK" if slo["breaches"] == 0 else "BREACHED"
        lines.append(
            "slo: %s — p%d <= %.3fs, %d/%d breaches, "
            "compliance %.4f, budget spent %.2fx"
            % (
                status,
                round(slo["target"] * 100),
                slo["objective_s"],
                slo["breaches"],
                slo["total"],
                slo["compliance"],
                slo["budget_spent"],
            )
        )
        for window in slo["windows"]:
            marker = "!" if window["burn_rate"] > 1.0 else " "
            lines.append(
                "  %s [%6.2f, %6.2f)s  n=%-4d p99 %7.4fs  burn %6.2fx"
                % (
                    marker,
                    window["t0_s"],
                    window["t1_s"],
                    window["total"],
                    window["p99_s"],
                    window["burn_rate"],
                )
            )
    if findings is not None:
        lines.append("")
        if findings:
            lines.append("findings:")
            for finding in findings:
                rendered = (
                    finding.format()
                    if hasattr(finding, "format")
                    else str(finding)
                )
                lines.append("  %s" % (rendered,))
        else:
            lines.append("findings: none")
    return "\n".join(lines)


# -- self-contained HTML export --------------------------------------------


def _svg_sparkline(values, width=240, height=36):
    if not values:
        return "<svg width='%d' height='%d'></svg>" % (width, height)
    lo, hi = min(values), max(values)
    span = hi - lo or 1.0
    step = width / max(1, len(values) - 1) if len(values) > 1 else 0
    points = " ".join(
        "%.1f,%.1f"
        % (
            i * step if len(values) > 1 else width / 2,
            height - 2 - (v - lo) / span * (height - 4),
        )
        for i, v in enumerate(values)
    )
    return (
        "<svg width='%d' height='%d' viewBox='0 0 %d %d'>"
        "<polyline fill='none' stroke='#2563eb' stroke-width='1.5' "
        "points='%s'/></svg>" % (width, height, width, height, points)
    )


def _escape(text):
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


def to_html(payload, findings=None, title="repro telemetry"):
    """One self-contained HTML page: no scripts, no external assets."""
    validate_telemetry(payload)
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>%s</title><style>" % _escape(title),
        "body{font:14px/1.5 system-ui,sans-serif;margin:2em;color:#111}",
        "table{border-collapse:collapse}",
        "td,th{padding:4px 12px;border-bottom:1px solid #ddd;"
        "text-align:right;font-variant-numeric:tabular-nums}",
        "td:first-child,th:first-child{text-align:left}",
        ".breach{color:#b91c1c;font-weight:600}",
        ".ok{color:#15803d;font-weight:600}",
        ".finding{margin:.25em 0;padding:.4em .8em;"
        "border-left:4px solid #d97706;background:#fffbeb}",
        ".finding.critical{border-color:#b91c1c;background:#fef2f2}",
        "</style></head><body>",
        "<h1>%s</h1>" % _escape(title),
        "<p>%d samples @ %.3fs interval over %.3fs simulated "
        "(schema v%d)</p>"
        % (
            payload["samples_taken"],
            payload["interval_s"],
            payload["makespan_s"],
            payload["schema_version"],
        ),
        "<h2>Series</h2><table>",
        "<tr><th>series</th><th></th><th>last</th><th>mean</th>"
        "<th>max</th></tr>",
    ]
    series = payload["series"]
    for name in sorted(series):
        values = [v for _, v in series[name]["samples"]]
        if values:
            stats = (
                "<td>%.1f</td><td>%.1f</td><td>%.1f</td>"
                % (values[-1], sum(values) / len(values), max(values))
            )
        else:
            stats = "<td colspan='3'>(no samples)</td>"
        parts.append(
            "<tr><td>%s</td><td>%s</td>%s</tr>"
            % (_escape(name), _svg_sparkline(values), stats)
        )
    parts.append("</table>")
    slo = payload.get("slo")
    if slo is not None:
        breached = slo["breaches"] > 0
        parts.append("<h2>SLO</h2>")
        parts.append(
            "<p class='%s'>%s — p%d &le; %.3fs, %d/%d breaches, "
            "compliance %.4f, budget spent %.2fx</p>"
            % (
                "breach" if breached else "ok",
                "BREACHED" if breached else "OK",
                round(slo["target"] * 100),
                slo["objective_s"],
                slo["breaches"],
                slo["total"],
                slo["compliance"],
                slo["budget_spent"],
            )
        )
        parts.append(
            "<table><tr><th>window</th><th>queries</th><th>p99 (s)</th>"
            "<th>burn</th></tr>"
        )
        for window in slo["windows"]:
            parts.append(
                "<tr><td>[%.2f, %.2f)</td><td>%d</td><td>%.4f</td>"
                "<td%s>%.2fx</td></tr>"
                % (
                    window["t0_s"],
                    window["t1_s"],
                    window["total"],
                    window["p99_s"],
                    " class='breach'" if window["burn_rate"] > 1 else "",
                    window["burn_rate"],
                )
            )
        parts.append("</table>")
    if findings is not None:
        parts.append("<h2>Findings</h2>")
        if findings:
            for finding in findings:
                payload_f = (
                    finding.to_dict()
                    if hasattr(finding, "to_dict")
                    else dict(finding)
                )
                parts.append(
                    "<div class='finding %s'><b>%s</b> "
                    "[%.2f&ndash;%.2fs]: %s</div>"
                    % (
                        _escape(payload_f["severity"]),
                        _escape(payload_f["kind"]),
                        payload_f["t0_s"],
                        payload_f["t1_s"],
                        _escape(payload_f["detail"]),
                    )
                )
        else:
            parts.append("<p>none</p>")
    parts.append("</body></html>")
    return "\n".join(parts)


def write_html(payload, path, findings=None, title="repro telemetry"):
    with open(path, "w") as fh:
        fh.write(to_html(payload, findings=findings, title=title))
        fh.write("\n")
    return path
