"""SLO tracking and rule-based diagnostics over serving telemetry.

An operator runs the store against a **latency objective**: "99% of
queries answer within X simulated seconds".  :class:`SLOTracker`
consumes per-query completions (fed by the telemetry sampler once the
serving run's final schedule exists) and maintains, per sliding window
of the serving clock:

* the breach count and breach fraction (queries over the objective);
* the window's exact-sample p99 latency;
* the **error-budget burn rate** — breach fraction divided by the budget
  ``1 - target``.  Burn rate 1.0 spends the budget exactly as fast as it
  accrues; 10x burn means the window would exhaust a month of budget in
  three days.  The framing is Google's SRE error-budget arithmetic, on
  simulated time.

:func:`diagnose` then turns the tracker plus the sampler's series into
structured :class:`Finding`\\ s — "p99 breach in window [t0,t1): peer 3
at 4.1x mean load, top key 'figure', 62% of breach-window read bytes" —
the rule engine behind ``repro top`` and the experiments'
``--telemetry`` mode.  Everything here is a pure function of recorded
series: running diagnostics cannot change a single simulated result.
"""

from dataclasses import dataclass, field

from repro.obs.metrics import quantile_exact

#: float-comparison slack for simulated instants
_EPS = 1e-9

#: a peer whose served-byte rate exceeds this multiple of the mean of
#: active peers is reported as hot in breach windows
HOT_PEER_FACTOR = 2.0

#: queue depth is "growing" when the last window's mean exceeds this
#: multiple of the first window's (and is at least MIN_QUEUE_DEPTH)
QUEUE_GROWTH_FACTOR = 2.0
MIN_QUEUE_DEPTH = 2.0


class SLOTracker:
    """Latency-objective accounting over sliding serving-clock windows."""

    def __init__(self, objective_s, target=0.99, window_s=0.5):
        if objective_s <= 0:
            raise ValueError("objective_s must be positive")
        if not 0.0 < target < 1.0:
            raise ValueError("target must be in (0, 1)")
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.objective_s = float(objective_s)
        self.target = float(target)
        self.window_s = float(window_s)
        self._completions = []  # (finish_s, latency_s), feed order

    def observe(self, finish_s, latency_s):
        """One query completion at serving-clock instant ``finish_s``."""
        self._completions.append((float(finish_s), float(latency_s)))

    # -- derived views -----------------------------------------------------

    @property
    def total(self):
        return len(self._completions)

    @property
    def breaches(self):
        return sum(
            1
            for _, lat in self._completions
            if lat > self.objective_s + _EPS
        )

    @property
    def compliance(self):
        """Fraction of completions within the objective (1.0 when idle)."""
        if not self._completions:
            return 1.0
        return 1.0 - self.breaches / len(self._completions)

    @property
    def budget_spent(self):
        """Error budget consumed, as a fraction of the whole budget."""
        if not self._completions:
            return 0.0
        allowed = (1.0 - self.target) * len(self._completions)
        return self.breaches / allowed if allowed > 0 else float("inf")

    def windows(self):
        """Per-window rows: ``[{t0_s, t1_s, total, breaches, p99_s,
        burn_rate}]`` tiling the completion range with ``window_s``."""
        if not self._completions:
            return []
        end = max(t for t, _ in self._completions) + _EPS
        rows = []
        t0 = 0.0
        while t0 < end:
            t1 = t0 + self.window_s
            lats = sorted(
                lat
                for t, lat in self._completions
                if t0 - _EPS <= t < t1 - _EPS
            )
            if lats:
                breaches = sum(
                    1 for lat in lats if lat > self.objective_s + _EPS
                )
                budget = 1.0 - self.target
                rows.append(
                    {
                        "t0_s": t0,
                        "t1_s": t1,
                        "total": len(lats),
                        "breaches": breaches,
                        "p99_s": quantile_exact(lats, 0.99),
                        "burn_rate": (breaches / len(lats)) / budget,
                    }
                )
            t0 = t1
        return rows

    def breach_windows(self):
        """Windows whose exact-sample p99 exceeds the objective."""
        return [
            w for w in self.windows() if w["p99_s"] > self.objective_s + _EPS
        ]

    def to_dict(self):
        return {
            "objective_s": self.objective_s,
            "target": self.target,
            "window_s": self.window_s,
            "total": self.total,
            "breaches": self.breaches,
            "compliance": self.compliance,
            "budget_spent": self.budget_spent,
            "windows": self.windows(),
        }


@dataclass
class Finding:
    """One structured diagnostics result."""

    kind: str  # "latency-breach" | "hot-peer" | "queue-growth"
    severity: str  # "critical" | "warning" | "info"
    t0_s: float
    t1_s: float
    subject: object = None  # peer index / key, when the rule names one
    detail: str = ""
    data: dict = field(default_factory=dict)

    def to_dict(self):
        return {
            "kind": self.kind,
            "severity": self.severity,
            "t0_s": self.t0_s,
            "t1_s": self.t1_s,
            "subject": self.subject,
            "detail": self.detail,
            "data": dict(self.data),
        }

    def format(self):
        return "[%s] %s %.2f-%.2fs: %s" % (
            self.severity,
            self.kind,
            self.t0_s,
            self.t1_s,
            self.detail,
        )


def _peer_rate_series(sampler):
    """``{peer_index: Series}`` of the stock per-peer read-rate probes."""
    out = {}
    prefix = "peer_read_bytes_per_s{peer="
    for name, series in sampler.series.items():
        if name.startswith(prefix):
            out[int(name[len(prefix):-1])] = series
    return out


def _window_mean(series, t0_s, t1_s):
    stats = series.window_stats(t0_s, t1_s)
    return stats["mean"] if stats else 0.0


def diagnose(sampler, slo, ledger=None):
    """Run the diagnostics rules; returns findings, worst first.

    Rules:

    * **latency-breach** (critical) — for every SLO window whose p99
      exceeds the objective, one finding carrying the window's breach
      count and burn rate;
    * **hot-peer** (warning) — inside each breach window, the peer whose
      served-read-byte rate tops :data:`HOT_PEER_FACTOR` times the mean
      of active peers, with its load multiple, its hottest key (from the
      ledger's cumulative ranking), and that key's share of the window's
      wire bytes when derivable;
    * **queue-growth** (warning) — admission queue depth whose last-window
      mean is :data:`QUEUE_GROWTH_FACTOR` times the first window's.
    """
    findings = []
    breaches = slo.breach_windows() if slo is not None else []
    for window in breaches:
        findings.append(
            Finding(
                kind="latency-breach",
                severity="critical",
                t0_s=window["t0_s"],
                t1_s=window["t1_s"],
                detail=(
                    "p99 %.4fs over objective %.4fs "
                    "(%d/%d queries breached, burn rate %.1fx)"
                    % (
                        window["p99_s"],
                        slo.objective_s,
                        window["breaches"],
                        window["total"],
                        window["burn_rate"],
                    )
                ),
                data=dict(window),
            )
        )
    peer_rates = _peer_rate_series(sampler)
    hot_seen = set()
    for window in breaches:
        t0, t1 = window["t0_s"], window["t1_s"]
        means = {
            peer: _window_mean(series, t0, t1)
            for peer, series in peer_rates.items()
        }
        active = {p: m for p, m in means.items() if m > 0}
        if not active:
            continue
        mean_rate = sum(active.values()) / len(active)
        peer, rate = max(active.items(), key=lambda kv: (kv[1], -kv[0]))
        if mean_rate <= 0 or rate < HOT_PEER_FACTOR * mean_rate:
            continue
        if peer in hot_seen:
            continue  # one hot-peer finding per peer, at its first breach
        hot_seen.add(peer)
        detail = "peer %d at %.1fx mean served-read load" % (
            peer,
            rate / mean_rate,
        )
        data = {"peer": peer, "rate": rate, "mean_rate": mean_rate}
        if ledger is not None:
            hottest = ledger.hottest_keys(1)
            if hottest:
                key_bytes, key = hottest[0]
                data["top_key"] = key
                wire = sampler.series.get("wire_bytes_per_s")
                window_wire = (
                    _window_mean(wire, t0, t1) * (t1 - t0) if wire else 0.0
                )
                if window_wire > 0:
                    share = min(1.0, rate * (t1 - t0) / window_wire)
                    data["peer_wire_share"] = share
                    detail += ", top key %r, %.0f%% of window wire bytes" % (
                        key,
                        100.0 * share,
                    )
                else:
                    detail += ", top key %r" % (key,)
        findings.append(
            Finding(
                kind="hot-peer",
                severity="warning",
                t0_s=t0,
                t1_s=t1,
                subject=peer,
                detail=detail,
                data=data,
            )
        )
    queue = sampler.series.get("queue_depth")
    if queue is not None and len(queue.ring) >= 4:
        items = queue.items()
        half = len(items) // 2
        first = sum(v for _, v in items[:half]) / half
        last = sum(v for _, v in items[half:]) / (len(items) - half)
        if last >= MIN_QUEUE_DEPTH and last > QUEUE_GROWTH_FACTOR * max(
            first, 0.5
        ):
            findings.append(
                Finding(
                    kind="queue-growth",
                    severity="warning",
                    t0_s=items[0][0],
                    t1_s=items[-1][0],
                    detail=(
                        "admission queue depth grew %.1f -> %.1f "
                        "(mean, first vs last half of the run)"
                        % (first, last)
                    ),
                    data={"first_mean": first, "last_mean": last},
                )
            )
    rank = {"critical": 0, "warning": 1, "info": 2}
    findings.sort(key=lambda f: (rank[f.severity], f.t0_s, f.kind))
    return findings
