"""A small metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the aggregate sibling of the span tracer: spans answer
"where did *this* query's simulated time go", the registry answers "how is
the whole run distributed" — hop counts, fetch sizes, queue waits,
per-resource utilization.  :class:`~repro.sim.meter.TrafficMeter` and
:func:`repro.kadop.stats.network_stats` both feed it (see
``TrafficMeter.bind_metrics`` and ``NetworkStats.to_registry``).

Everything here is simulated-time / simulated-byte accounting; there is no
wall clock, so snapshots are fully deterministic and safe to diff in tests.
"""

import json
import math
from bisect import bisect_left

#: DHT route lengths (hops); ceil(log16 N) stays tiny even for huge rings
HOP_BUCKETS = (0, 1, 2, 3, 4, 5, 6, 8, 10, 12, 16)

#: payload sizes of individual fetches (posting lists, DPP/view blocks)
BYTES_BUCKETS = (0, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304)

#: scheduler queue-wait (seconds between a task becoming ready and starting)
QUEUE_WAIT_BUCKETS_S = (0.0, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


def quantile_rank(q, count):
    """The 1-based nearest-rank index of quantile ``q`` in ``count`` samples.

    ``rank = max(1, ceil(q * count))``, clamped to ``count`` — the single
    definition every exact-sample quantile in the codebase derives from,
    so ``ServingResult.percentile`` and :meth:`Histogram.quantile` can
    never disagree on which sample a quantile names.
    """
    if count < 1:
        raise ValueError("quantile of an empty sample set")
    return min(count, max(1, math.ceil(q * count)))


def quantile_exact(samples, q):
    """Nearest-rank quantile over raw samples; ``q`` in [0, 1].

    ``samples`` must already be sorted ascending.  Returns the sample at
    :func:`quantile_rank` — an actual observed value, never interpolated
    (q=0.99 of 60 latencies is the 60th-smallest latency, not a blend).
    Returns None for an empty sequence.
    """
    if not samples:
        return None
    return samples[quantile_rank(q, len(samples)) - 1]


class Counter:
    """A monotonically increasing value (int or float)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError("counters only go up; got %r" % (amount,))
        self.value += amount

    def to_dict(self):
        return {"value": self.value}


class Gauge:
    """A value that can go up and down (e.g. per-peer load)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value):
        self.value = value

    def to_dict(self):
        return {"value": self.value}


class Histogram:
    """A fixed-bucket histogram: counts per upper bound, plus sum/count.

    ``buckets`` are inclusive upper bounds in increasing order; one
    overflow bucket catches everything above the last bound.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets):
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        bounds = tuple(buckets)
        if list(bounds) != sorted(bounds):
            raise ValueError("bucket bounds must be increasing: %r" % (bounds,))
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value):
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q):
        """Bucket upper bound holding quantile ``q`` (0..1); None if empty.

        Nearest-rank, via the shared :func:`quantile_rank` — the same rank
        arithmetic ``ServingResult.percentile`` applies to raw samples, so
        the histogram answers with the (bucket-resolution) bound of the
        identical sample a raw-sample quantile would name."""
        if not self.count:
            return None
        rank = quantile_rank(q, self.count)
        seen = 0
        for bound, count in zip(self.buckets, self.counts):
            seen += count
            if seen >= rank:
                return bound
        return float("inf")

    def to_dict(self):
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


def _key(name, labels):
    if not labels:
        return name
    rendered = ",".join("%s=%s" % (k, labels[k]) for k in sorted(labels))
    return "%s{%s}" % (name, rendered)


class MetricsRegistry:
    """Named metrics with optional labels; one instance per run.

    >>> reg = MetricsRegistry()
    >>> reg.counter("queries_total").inc()
    >>> reg.histogram("dht_hops", HOP_BUCKETS).observe(3)
    >>> sorted(reg.snapshot()["counters"])
    ['queries_total']
    """

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    def counter(self, name, **labels):
        key = _key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name, **labels):
        key = _key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(self, name, buckets=None, **labels):
        key = _key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(
                buckets if buckets is not None else BYTES_BUCKETS
            )
        return metric

    # -- export ----------------------------------------------------------------

    def snapshot(self):
        """A plain-dict copy of every metric, ready for JSON."""
        return {
            "counters": {
                k: self._counters[k].value for k in sorted(self._counters)
            },
            "gauges": {k: self._gauges[k].value for k in sorted(self._gauges)},
            "histograms": {
                k: self._histograms[k].to_dict() for k in sorted(self._histograms)
            },
        }

    def to_json(self, indent=None):
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    # -- derived views ---------------------------------------------------------

    def utilization(self):
        """Per-resource utilization from the schedule observations.

        Returns ``{resource: (busy_s, capacity_s, busy_s / capacity_s)}``
        over every scheduler run observed so far (see
        :func:`repro.obs.trace.observe_schedule`).
        """
        prefix_busy = "resource_busy_s{resource="
        table = {}
        for key, counter in self._counters.items():
            if not key.startswith(prefix_busy):
                continue
            resource = key[len(prefix_busy):-1]
            cap_key = _key("resource_capacity_s", {"resource": resource})
            cap = self._counters.get(cap_key)
            capacity_s = cap.value if cap is not None else 0.0
            busy_s = counter.value
            ratio = busy_s / capacity_s if capacity_s else 0.0
            table[resource] = (busy_s, capacity_s, ratio)
        return table
