"""Per-query EXPLAIN ANALYZE: where did the time and the bytes go?

``repro explain <query>`` runs one query with tracing on and folds the
span subtree, the :class:`~repro.kadop.execution.QueryReport`, and the
:class:`~repro.sim.meter.TrafficMeter` delta into one attribution
report: simulated time per phase, wire bytes per category broken down to
peer and key.  The numbers are *reconciled*, not estimated:

* **time** — the phase rows (``phase:index`` / ``view:serve`` +
  ``phase:document``) sum exactly to the query's simulated response
  time, because the executor constructs ``response_time_s`` as that sum;
* **bytes** — for every meter category, attributed rows plus one
  explicit ``(unattributed)`` residual sum exactly to the category's
  meter delta.  Attribution is conservative (a byte is assigned to a
  peer/key only when a span proves where it went: DHT read responses by
  their serving holder, document-phase answers and query-ship control by
  doc peer, routed locate control from hop counts), so the residual is
  provably non-negative — over-claiming would be lying with decimals.

:meth:`ExplainReport.reconcile` re-checks every identity and is asserted
by ``make telemetry-smoke`` and the unit tests; :meth:`format` renders
the terminal view.
"""

from repro.dht.network import CONTROL_BYTES
from repro.obs.report import EXPLAIN_SCHEMA_VERSION

#: DHT ops whose response payload is metered under "postings"
_POSTING_READ_OPS = ("get", "pipelined_get", "block_get")

#: label of the residual row every category carries
UNATTRIBUTED = "(unattributed)"


class ExplainReport:
    """One query's time/byte attribution; built by :func:`explain_query`."""

    def __init__(self, query, num_answers, report):
        self.schema_version = EXPLAIN_SCHEMA_VERSION
        self.query = query
        self.num_answers = num_answers
        self.report = report
        self.phases = []  # [{name, time_s}], summing to response_time_s
        # category -> {"total": bytes, "rows": [{peer, key, bytes}],
        #              "unattributed": bytes}
        self.categories = {}
        self.peer_busy = {}  # track -> seconds of span-attributed work

    # -- construction helpers ----------------------------------------------

    def add_phase(self, name, time_s):
        self.phases.append({"name": name, "time_s": time_s})

    def attribute(self, category, peer, key, nbytes):
        if nbytes <= 0:
            return
        cat = self.categories.setdefault(
            category, {"total": 0, "rows": {}, "unattributed": 0}
        )
        cat["rows"][(peer, key)] = cat["rows"].get((peer, key), 0) + nbytes

    def close_categories(self, traffic):
        """Pin category totals to the meter delta; residual = the rest."""
        for category, total in traffic.items():
            cat = self.categories.setdefault(
                category, {"total": 0, "rows": {}, "unattributed": 0}
            )
            cat["total"] = total
            cat["unattributed"] = total - sum(cat["rows"].values())

    # -- reconciliation ----------------------------------------------------

    def reconcile(self):
        """Re-check every attribution identity; returns ``{ok, checks}``.

        * phase times sum to the report's response time (exact float
          equality — both sides are the same additions);
        * per category: rows + residual == meter delta, residual >= 0;
        * total attributed+residual bytes == ``report.total_bytes``.
        """
        checks = []
        phase_sum = 0.0
        for phase in self.phases:
            phase_sum += phase["time_s"]
        checks.append(
            {
                "check": "time: sum(phases) == response_time_s",
                "got": phase_sum,
                "want": self.report.response_time_s,
                "ok": phase_sum == self.report.response_time_s,
            }
        )
        grand = 0
        for category in sorted(self.categories):
            cat = self.categories[category]
            attributed = sum(cat["rows"].values())
            grand += attributed + cat["unattributed"]
            checks.append(
                {
                    "check": "bytes[%s]: rows + residual == meter delta"
                    % category,
                    "got": attributed + cat["unattributed"],
                    "want": cat["total"],
                    "ok": attributed + cat["unattributed"] == cat["total"],
                }
            )
            checks.append(
                {
                    "check": "bytes[%s]: residual >= 0" % category,
                    "got": cat["unattributed"],
                    "want": ">= 0",
                    "ok": cat["unattributed"] >= 0,
                }
            )
        checks.append(
            {
                "check": "bytes: sum(categories) == report.total_bytes",
                "got": grand,
                "want": self.report.total_bytes,
                "ok": grand == self.report.total_bytes,
            }
        )
        return {"ok": all(c["ok"] for c in checks), "checks": checks}

    def assert_reconciles(self):
        result = self.reconcile()
        if not result["ok"]:
            failed = [c for c in result["checks"] if not c["ok"]]
            raise AssertionError(
                "explain does not reconcile: "
                + "; ".join(
                    "%s (got %r, want %r)" % (c["check"], c["got"], c["want"])
                    for c in failed
                )
            )
        return result

    # -- export ------------------------------------------------------------

    def to_dict(self):
        return {
            "schema_version": self.schema_version,
            "query": self.query,
            "answers": self.num_answers,
            "response_time_s": self.report.response_time_s,
            "time_to_first_s": self.report.time_to_first_s,
            "phases": list(self.phases),
            "categories": {
                category: {
                    "total": cat["total"],
                    "unattributed": cat["unattributed"],
                    "rows": [
                        {"peer": peer, "key": key, "bytes": nbytes}
                        for (peer, key), nbytes in sorted(
                            cat["rows"].items(),
                            key=lambda item: (-item[1], str(item[0])),
                        )
                    ],
                }
                for category, cat in sorted(self.categories.items())
            },
            "peer_busy_s": {
                track: busy for track, busy in sorted(self.peer_busy.items())
            },
            "reconciled": self.reconcile()["ok"],
        }

    def format(self, max_rows=8):
        lines = [
            "EXPLAIN ANALYZE %s" % self.query,
            "  answers %d   response %.6fs   first answer %.6fs"
            % (
                self.num_answers,
                self.report.response_time_s,
                self.report.time_to_first_s,
            ),
            "",
            "simulated time by phase:",
        ]
        for phase in self.phases:
            share = (
                phase["time_s"] / self.report.response_time_s * 100.0
                if self.report.response_time_s
                else 0.0
            )
            lines.append(
                "  %-18s %10.6fs  %5.1f%%"
                % (phase["name"], phase["time_s"], share)
            )
        lines.append(
            "  %-18s %10.6fs  (= sum of phases, reconciled)"
            % ("response", self.report.response_time_s)
        )
        if self.peer_busy:
            lines.append("")
            lines.append("span-attributed busy time by track:")
            for track in sorted(
                self.peer_busy, key=lambda t: -self.peer_busy[t]
            ):
                lines.append(
                    "  %-18s %10.6fs" % (track, self.peer_busy[track])
                )
        lines.append("")
        lines.append("wire bytes by category -> peer -> key:")
        for category in sorted(self.categories):
            cat = self.categories[category]
            lines.append("  %-10s total %d" % (category, cat["total"]))
            rows = sorted(
                cat["rows"].items(), key=lambda item: (-item[1], str(item[0]))
            )
            for (peer, key), nbytes in rows[:max_rows]:
                where = "peer %s" % peer if peer is not None else "routing"
                lines.append(
                    "    %-10s %-28r %10d" % (where, key, nbytes)
                )
            if len(rows) > max_rows:
                rest = sum(nbytes for _, nbytes in rows[max_rows:])
                lines.append(
                    "    ... %d more rows, %d bytes"
                    % (len(rows) - max_rows, rest)
                )
            if cat["unattributed"]:
                lines.append(
                    "    %-39s %10d" % (UNATTRIBUTED, cat["unattributed"])
                )
        result = self.reconcile()
        lines.append("")
        lines.append(
            "reconciliation: %s (%d checks)"
            % ("OK" if result["ok"] else "FAILED", len(result["checks"]))
        )
        for check in result["checks"]:
            if not check["ok"]:
                lines.append(
                    "  FAILED %s: got %r, want %r"
                    % (check["check"], check["got"], check["want"])
                )
        return "\n".join(lines)


def _collect_subtree(spans, root_id):
    """The root's spans in recorded order (parent links, not time)."""
    keep = {root_id}
    members = []
    for span in spans:
        if span.span_id == root_id or span.parent_id in keep:
            keep.add(span.span_id)
            members.append(span)
    return members


def build_explain(query, answers, report, spans, root_id):
    """Fold one traced query run into an :class:`ExplainReport`.

    ``spans`` must contain the query's full span subtree (the spans
    recorded between ``begin_query`` and ``end_query``); attribution
    reads only span args the recording sites proved — see module doc.
    """
    explain = ExplainReport(query, len(answers), report)
    members = _collect_subtree(spans, root_id)
    root = next(s for s in members if s.span_id == root_id)

    # time: the direct phase children of the query root.  The executor
    # builds response_time_s = index_time_s + doc_time_s on both exits
    # (view-hit runs carry the index side in the view:serve span), so
    # these rows sum to the root duration exactly.
    for span in members:
        if span.parent_id != root_id:
            continue
        if span.cat == "phase" or (
            span.cat == "view" and span.name.startswith("view:serve")
        ):
            explain.add_phase(span.name, span.duration_s)

    for span in members:
        if span.cat in ("task", "doc", "dht"):
            explain.peer_busy[span.track] = (
                explain.peer_busy.get(span.track, 0.0) + span.duration_s
            )
        if span.cat == "dht":
            op = span.args.get("op")
            key = span.args.get("key")
            served_by = span.args.get("served_by")
            payload = span.args.get("payload", 0)
            hops = span.args.get("hops", 0)
            if op in _POSTING_READ_OPS:
                # the holder's response payload, metered once per
                # delivery under "postings"
                explain.attribute("postings", served_by, key, payload)
                # the routed request: CONTROL_BYTES per overlay hop.
                # Per-attempt metering records max(1, hops_i) each, and
                # sum(max(1, h_i)) >= max(1, sum h_i), so this never
                # over-claims under retries
                explain.attribute(
                    "control", None, key, CONTROL_BYTES * max(1, hops)
                )
            elif op == "locate":
                explain.attribute(
                    "control", None, key, CONTROL_BYTES * max(1, hops)
                )
            elif op == "get_object":
                explain.attribute("control", served_by, key, payload)
                explain.attribute(
                    "control", None, key, CONTROL_BYTES * max(1, hops)
                )
        elif span.cat == "doc":
            # document-phase shipping: answer bytes and the query-ship
            # control round trip, both metered in the same block that
            # recorded this span
            peer = span.args.get("peer")
            explain.attribute(
                "documents", peer, "(answers)", span.args.get("bytes", 0)
            )
            explain.attribute(
                "control", peer, "(query ship)",
                span.args.get("control_bytes", 0),
            )

    explain.close_categories(report.traffic)
    # sanity: the root span is the query's response time
    if root.duration_s != report.response_time_s:
        explain.add_phase("(root drift)", float("nan"))
    return explain


def explain_query(
    system, query_text, keyword_steps=(), peer=None, strategy=None
):
    """Run ``query_text`` once and return ``(answers, ExplainReport)``.

    Enables tracing for the run when the system has none (tracing is
    byte-identical on/off, so this changes no result); an existing
    tracer is reused and left attached.
    """
    installed = False
    if system.tracer is None:
        system.enable_tracing()
        installed = True
    tracer = system.tracer
    first_new = len(tracer.spans)
    try:
        answers, report = system.query_with_report(
            query_text,
            keyword_steps=keyword_steps,
            peer=peer,
            strategy=strategy,
        )
        spans = tracer.spans[first_new:]
        root_id = next(s.span_id for s in spans if s.cat == "query")
        name = (
            query_text
            if isinstance(query_text, str)
            else getattr(query_text, "to_string", lambda: repr(query_text))()
        )
        return answers, build_explain(name, answers, report, spans, root_id)
    finally:
        if installed:
            system.disable_tracing()
