"""Background key migration off overloaded peers.

One :meth:`Rebalancer.run_pass` per balance tick: peers whose decayed
load exceeds ``overload`` times the mean shed their hottest keys to the
coldest peers.  A migration moves a whole *alias group* — the term key
plus its ``dpproot:``/``dppdata:`` pseudo-keys, which
:func:`~repro.dht.network.routing_alias` pins to one placement — so a
term and its DPP root/first block never split across peers.

The move reuses the versioned handover machinery of ``_rehome_key`` and
anti-entropy repair: the freshest holder's copy is landed on the target
with :meth:`DhtNetwork._sync_copy` (same stamp — a migrated copy is the
same logical write, moved), metered as wire traffic, and then
:meth:`DhtNetwork.set_placement` redirects ownership.  The old owner
keeps its copy and stays in the replica set as a backup, so no acked
posting ever has fewer live copies after a migration than before —
the fuzzer's migration invariant.
"""

from dataclasses import dataclass, field

from repro.dht.network import routing_alias
from repro.postings.encoder import encoded_size


@dataclass
class RebalanceReport:
    """What one rebalance pass did."""

    overloaded: tuple = ()  # peer indices above the overload threshold
    migrations: int = 0  # alias groups re-placed
    keys_moved: int = 0  # store/object keys copied or re-owned
    bytes_moved: int = 0
    moved: list = field(default_factory=list)  # (alias, src_peer, dst_peer)


class Rebalancer:
    """Periodic overload-driven key migration; see the module docstring."""

    def __init__(self, net, ledger, overload=2.0, max_keys=2):
        if overload <= 1.0:
            raise ValueError("overload factor must be > 1")
        if max_keys < 1:
            raise ValueError("max_keys must be >= 1")
        self.net = net
        self.ledger = ledger
        self.overload = overload
        self.max_keys = max_keys
        # cumulative counters for stats
        self.migrations = 0
        self.keys_moved = 0
        self.bytes_moved = 0

    def run_pass(self):
        """Migrate hot alias groups off peers above the overload line."""
        report = RebalanceReport()
        net = self.net
        alive = net.alive_nodes()
        if len(alive) < 2:
            return report
        loads = {n.peer_index: self.ledger.peer_load(n.peer_index) for n in alive}
        total = sum(loads.values())
        if total <= 0.0:
            return report
        threshold = self.overload * (total / len(alive))
        overloaded = sorted(
            (n for n in alive if loads[n.peer_index] > threshold),
            key=lambda n: (-loads[n.peer_index], n.peer_index),
        )
        report.overloaded = tuple(n.peer_index for n in overloaded)
        by_node = {id(n): n for n in alive}
        for node in overloaded:
            for alias, group, heat in self._hot_groups(node):
                target = self._pick_target(
                    alias, loads, avoid=node, by_node=by_node
                )
                if target is None:
                    continue
                moved_bytes = self._migrate(alias, group, target)
                report.migrations += 1
                report.keys_moved += len(group)
                report.bytes_moved += moved_bytes
                report.moved.append(
                    (alias, node.peer_index, target.peer_index)
                )
                # shift the moved heat in this pass's view of the world so
                # successive migrations do not all pile onto one cold peer
                loads[node.peer_index] -= heat
                loads[target.peer_index] += heat
        self.migrations += report.migrations
        self.keys_moved += report.keys_moved
        self.bytes_moved += report.bytes_moved
        return report

    def _hot_groups(self, node):
        """This peer's hottest owned alias groups, ``max_keys`` of them.

        Grouped by routing alias (heat = the group's summed key rates) so
        the whole co-located family moves together.  Membership is every
        key of the alias — cold alias-mates (e.g. the term key and DPP
        root of a family whose heat is all in its data blocks) must land
        on the target too, or the re-placed owner would serve gaps."""
        net = self.net
        groups = {}
        for key in net._all_keys():
            alias = routing_alias(key)
            entry = groups.setdefault(alias, [0.0, []])
            entry[0] += self.ledger.key_rate(key)
            entry[1].append(key)
        ranked = sorted(
            (
                (heat, alias, sorted(keys))
                for alias, (heat, keys) in groups.items()
                if heat > 0.0 and net.owner_of(alias) is node
            ),
            key=lambda item: (-item[0], item[1]),
        )
        return [
            (alias, keys, heat)
            for heat, alias, keys in ranked[: self.max_keys]
        ]

    def _pick_target(self, alias, loads, avoid, by_node):
        """Coldest alive peer outside the group's replica set — and only
        if it is actually colder than the peer shedding the group."""
        net = self.net
        taken = {id(n) for n in net.replica_nodes(alias)}
        candidates = [
            n
            for n in net.alive_nodes()
            if id(n) not in taken and n is not avoid
        ]
        if not candidates:
            return None
        target = min(
            candidates, key=lambda n: (loads[n.peer_index], n.peer_index)
        )
        if loads[target.peer_index] >= loads[avoid.peer_index]:
            return None
        return target

    def _migrate(self, alias, group, target):
        """Land the group's freshest copies on ``target``, then re-place.

        Versioned handover, exactly like ``_rehome_key``: per key the
        freshest holder (highest stamp, then count) is the source; the
        target copy inherits the stamp.  Ownership flips only after every
        key of the group has landed, so a reader never routes to a target
        that is still missing part of the family."""
        net = self.net
        moved_bytes = 0
        for key in group:
            holders = [
                n
                for n in net.alive_nodes()
                if n is not target and (key in n.store or key in n.objects)
            ]
            source = max(
                holders,
                key=lambda n: (
                    n.versions.get(key, 0),
                    n.store.count(key) if key in n.store else 0,
                    -n.peer_index,
                ),
                default=None,
            )
            if source is None:
                continue
            version = source.versions.get(key, 0)
            if key in source.store:
                src_score = (version, source.store.count(key))
                tgt_score = (
                    target.versions.get(key, 0),
                    target.store.count(key) if key in target.store else 0,
                )
                # never replace a copy the target already holds at the
                # source's freshness or better (repair semantics: the
                # freshest copy wins, a move can only catch copies up)
                if tgt_score < src_score:
                    postings = source.store.get(key)
                    nbytes = encoded_size(postings)
                    net._sync_copy(target, key, postings, version=version)
                    net.meter.record("postings", nbytes)
                    self.ledger.record_write(key, target.peer_index, nbytes)
                    moved_bytes += nbytes
            if key in source.objects:
                obj, nbytes = source.objects[key]
                if (
                    key not in target.objects
                    or target.versions.get(key, 0) < version
                ):
                    target.objects[key] = (obj, nbytes)
                    target.versions[key] = version
                    net.meter.record("control", nbytes)
                    moved_bytes += nbytes
        net.set_placement(alias, target)
        return moved_bytes
