"""Per-key / per-peer load accounting in simulated time.

The ledger is fed by the DHT read and write paths (``get`` /
``pipelined_get`` / ``block_get`` / ``get_object`` and the write ops)
via the :attr:`DhtNetwork.balancer` hook.  Two views of the same
traffic:

* **cumulative totals** — every read/write ever recorded, per key and
  per peer, plus grand totals.  The per-key and per-peer breakdowns are
  two partitions of one event stream, so each must sum to the grand
  totals exactly (:meth:`check_conservation`, a fuzzer invariant).
* **decayed rates** — recent read bytes per key and read+write bytes
  per peer, halved (by default) at every :meth:`tick`.  Promotion,
  ``least_loaded`` holder selection, and the rebalancer's overload test
  all read the rates, so a key that cools down sheds its hot status
  within a few ticks.

Ticks are driven explicitly — by the serving engine's rebalance clock
or by tests — never by wall time, so every rate is deterministic.
"""


class LoadLedger:
    """Meters key- and peer-level DHT traffic; see the module docstring."""

    def __init__(self, decay=0.5):
        if not 0.0 <= decay < 1.0:
            raise ValueError("decay must be in [0, 1)")
        self.decay = decay
        # cumulative totals (never decayed)
        self.key_reads = {}
        self.key_read_bytes = {}
        self.key_writes = {}
        self.key_write_bytes = {}
        self.peer_reads = {}
        self.peer_read_bytes = {}
        self.peer_writes = {}
        self.peer_write_bytes = {}
        self.total_reads = 0
        self.total_read_bytes = 0
        self.total_writes = 0
        self.total_write_bytes = 0
        # decayed-rate state: folded window + bytes since the last tick
        self._key_rate = {}
        self._peer_rate = {}
        self._key_window = {}
        self._peer_window = {}
        self.ticks = 0

    # -- recording ---------------------------------------------------------

    def record_read(self, key, peer_index, nbytes):
        """One read of ``key`` served by peer ``peer_index``."""
        self.key_reads[key] = self.key_reads.get(key, 0) + 1
        self.key_read_bytes[key] = self.key_read_bytes.get(key, 0) + nbytes
        self.peer_reads[peer_index] = self.peer_reads.get(peer_index, 0) + 1
        self.peer_read_bytes[peer_index] = (
            self.peer_read_bytes.get(peer_index, 0) + nbytes
        )
        self.total_reads += 1
        self.total_read_bytes += nbytes
        self._key_window[key] = self._key_window.get(key, 0) + nbytes
        self._peer_window[peer_index] = (
            self._peer_window.get(peer_index, 0) + nbytes
        )

    def record_write(self, key, peer_index, nbytes):
        """One write of ``key`` applied at peer ``peer_index`` (the owner
        apply, each replica push, and each hot-copy/migration copy are
        separate events — utilization counts every copy landed)."""
        self.key_writes[key] = self.key_writes.get(key, 0) + 1
        self.key_write_bytes[key] = self.key_write_bytes.get(key, 0) + nbytes
        self.peer_writes[peer_index] = self.peer_writes.get(peer_index, 0) + 1
        self.peer_write_bytes[peer_index] = (
            self.peer_write_bytes.get(peer_index, 0) + nbytes
        )
        self.total_writes += 1
        self.total_write_bytes += nbytes
        # writes count toward peer utilization but not key *read* heat
        self._peer_window[peer_index] = (
            self._peer_window.get(peer_index, 0) + nbytes
        )

    # -- decayed rates -----------------------------------------------------

    def tick(self):
        """Fold the current window into the decayed rates.

        ``rate' = decay * rate + window`` — an exponentially weighted sum
        of per-tick byte counts, so sustained traffic converges toward
        ``window / (1 - decay)`` and silence halves the rate per tick."""
        for table, window in (
            (self._key_rate, self._key_window),
            (self._peer_rate, self._peer_window),
        ):
            for ident in list(table):
                decayed = table[ident] * self.decay
                if decayed < 1e-9 and ident not in window:
                    del table[ident]
                else:
                    table[ident] = decayed
            for ident, nbytes in window.items():
                table[ident] = table.get(ident, 0.0) + nbytes
            window.clear()
        self.ticks += 1

    def key_rate(self, key):
        """Decayed read-byte heat of ``key``, including the open window."""
        return self._key_rate.get(key, 0.0) + self._key_window.get(key, 0)

    def peer_load(self, peer_index):
        """Decayed read+write byte load on ``peer_index``, incl. window."""
        return self._peer_rate.get(peer_index, 0.0) + self._peer_window.get(
            peer_index, 0
        )

    # -- summaries ---------------------------------------------------------

    def hottest_keys(self, n=None):
        """``[(read_bytes, key)]`` by cumulative read bytes, descending."""
        ranked = sorted(
            ((nbytes, key) for key, nbytes in self.key_read_bytes.items()),
            key=lambda item: (-item[0], item[1]),
        )
        return ranked if n is None else ranked[:n]

    def hottest_peers(self, n=None):
        """``[(read_bytes, peer_index)]`` by cumulative read bytes."""
        ranked = sorted(
            (
                (nbytes, peer)
                for peer, nbytes in self.peer_read_bytes.items()
            ),
            key=lambda item: (-item[0], item[1]),
        )
        return ranked if n is None else ranked[:n]

    def check_conservation(self):
        """Per-key and per-peer breakdowns each sum to the grand totals.

        Every record touches exactly one key entry, one peer entry, and
        the totals, so any drift between the three views is an
        accounting bug; the fuzzer asserts this after balance steps."""
        return (
            sum(self.key_reads.values()) == self.total_reads
            and sum(self.peer_reads.values()) == self.total_reads
            and sum(self.key_read_bytes.values()) == self.total_read_bytes
            and sum(self.peer_read_bytes.values()) == self.total_read_bytes
            and sum(self.key_writes.values()) == self.total_writes
            and sum(self.peer_writes.values()) == self.total_writes
            and sum(self.key_write_bytes.values()) == self.total_write_bytes
            and sum(self.peer_write_bytes.values()) == self.total_write_bytes
        )

    def read_snapshot(self):
        """Copies of the cumulative read-byte partitions, for deltas.

        EXPLAIN and the telemetry tests bracket a query (or a serving
        window) with ``read_snapshot`` / :meth:`read_delta` to see which
        keys and peers the interval's served reads landed on."""
        return {
            "key": dict(self.key_read_bytes),
            "peer": dict(self.peer_read_bytes),
        }

    def read_delta(self, snapshot):
        """Read bytes per key and per peer since ``snapshot``.

        The two views partition the same event stream, so each sums to
        the same interval total (the conservation property, restricted
        to the interval).  Zero-delta entries are dropped."""
        out = {}
        for part, current in (
            ("key", self.key_read_bytes),
            ("peer", self.peer_read_bytes),
        ):
            before = snapshot[part]
            out[part] = {
                ident: nbytes - before.get(ident, 0)
                for ident, nbytes in current.items()
                if nbytes != before.get(ident, 0)
            }
        return out

    def to_dict(self, top=8):
        """JSON-ready summary used by ``repro stats --json``."""
        return {
            "ticks": self.ticks,
            "total_reads": self.total_reads,
            "total_read_bytes": self.total_read_bytes,
            "total_writes": self.total_writes,
            "total_write_bytes": self.total_write_bytes,
            "hottest_keys": [
                {"read_bytes": nbytes, "key": key}
                for nbytes, key in self.hottest_keys(top)
            ],
            "hottest_peers": [
                {"read_bytes": nbytes, "peer": peer}
                for nbytes, peer in self.hottest_peers(top)
            ],
        }
