"""The :attr:`DhtNetwork.balancer` hook: read fan-out and hot copies.

Installed by :class:`~repro.kadop.system.KadopNetwork` on every
deployment.  With the default knobs (policy ``owner``, no hot-key
threshold, no rebalance interval) it only *observes* — every byte,
answer, and simulated second is identical to running without it (the
differential test in ``tests/test_balance.py``).  Three mechanisms
engage via config:

**Read fan-out** (``read_policy``): a get may be served by any member
of the key's replica set (plus its hot extra copies) instead of always
the owner.  A candidate is eligible only when its copy provably equals
the owner's — same write-version stamp *and* same posting count.
Versions alone are not enough: under a majority quorum a replica can
miss append *A*, then apply append *B* and land on the owner's stamp
while still lacking *A*'s postings; since replicas only ever miss whole
append batches (deliveries are idempotent and repair replaces copies
wholesale), an equal count at an equal version implies the identical
copy.  A replica that missed a quorum write is therefore never chosen
— the read falls back to the freshest copy (the owner), which is the
read-path staleness guarantee.

**Hot-key extra replication**: when a key's decayed read rate crosses
``hot_key_threshold``, its list is copied onto the coldest alive peers
outside the replica set.  Writes propagate synchronously to the extras
(same stamp, metered as background replication like anti-entropy, not
charged to the writer's receipt), so extras stay byte-fresh and
eligible.  When the rate decays below half the threshold the extra
copies are dropped again — unless one has become the data's sole
survivor or joined the replica set through churn.

**Rebalance ticks**: :meth:`maybe_tick` advances on the serving
engine's shared clock; each tick decays the ledger, demotes cooled
keys, and runs one :class:`~repro.balance.rebalancer.Rebalancer` pass.
"""

from repro.balance.ledger import LoadLedger
from repro.balance.rebalancer import Rebalancer
from repro.postings.encoder import encoded_size

#: float-comparison slack for simulated instants
_EPS = 1e-9

READ_POLICIES = ("owner", "round_robin", "least_loaded")


class LoadBalancer:
    """Per-network balancing state; see the module docstring."""

    def __init__(
        self,
        net,
        read_policy="owner",
        hot_key_threshold=None,
        hot_key_copies=1,
        decay=0.5,
        rebalance_interval_s=None,
        rebalance_overload=2.0,
        rebalance_max_keys=2,
    ):
        if read_policy not in READ_POLICIES:
            raise ValueError("unknown read policy %r" % (read_policy,))
        self.net = net
        self.read_policy = read_policy
        self.hot_key_threshold = hot_key_threshold
        self.hot_key_copies = hot_key_copies
        self.rebalance_interval_s = rebalance_interval_s
        self.ledger = LoadLedger(decay=decay)
        self.rebalancer = Rebalancer(
            net,
            self.ledger,
            overload=rebalance_overload,
            max_keys=rebalance_max_keys,
        )
        self.extras = {}  # store key -> [nodes] holding extra hot copies
        self._rr = {}  # store key -> round-robin cursor
        self.promotions = 0
        self.demotions = 0
        self.fanout_reads = 0  # reads served by a non-owner copy
        self._next_tick = None

    # -- read path ---------------------------------------------------------

    def _eligible(self, key, owner):
        """Candidate holders whose copy equals the owner's, owner first."""
        version = owner.versions.get(key, 0)
        count = owner.store.count(key)
        candidates = [owner]
        seen = {id(owner)}
        for node in self.net.replica_nodes(key) + self.extras.get(key, []):
            if id(node) in seen:
                continue
            seen.add(id(node))
            if (
                node.alive
                and key in node.store
                and node.versions.get(key, 0) == version
                and node.store.count(key) == count
            ):
                candidates.append(node)
        return candidates

    def read_holder(self, key, owner):
        """The node that should serve this get, or None to fall back.

        ``owner`` is the routed owner.  Policy ``owner`` — or an owner
        that does not hold the key (a post-crash gap the fault layer's
        probe handles) — short-circuits to the legacy behaviour."""
        if self.read_policy == "owner":
            return owner
        if key not in owner.store:
            return None
        candidates = self._eligible(key, owner)
        if len(candidates) == 1:
            return owner
        if self.read_policy == "round_robin":
            cursor = self._rr.get(key, 0)
            self._rr[key] = cursor + 1
            pick = candidates[cursor % len(candidates)]
        else:  # least_loaded
            pick = min(
                candidates,
                key=lambda n: (self.ledger.peer_load(n.peer_index), n.peer_index),
            )
        if pick is not owner:
            self.fanout_reads += 1
            self._observe("fanout", key)
        return pick

    def on_read(self, key, holder, nbytes, promote=True):
        """Ledger a served read; hot-key promotion rides the get path.

        ``promote=False`` for object and DPP-block reads: roots are tiny
        control objects, and blocks have their own popularity replication
        (``dpp_replicate_after``) — double-replicating them here would
        fight that mechanism."""
        self.ledger.record_read(key, holder.peer_index, nbytes)
        if promote and self.hot_key_threshold is not None:
            self._maybe_promote(key)

    # -- write path --------------------------------------------------------

    def on_write(self, key, node, nbytes):
        """Ledger one applied write copy (owner apply or replica push)."""
        self.ledger.record_write(key, node.peer_index, nbytes)

    def propagate_write(self, op, key, postings, stamp):
        """Apply an acked write to the key's hot extra copies.

        Same store primitive, same stamp — an extra copy is the same
        logical write landed on one more disk, exactly like a replica
        push.  Metered as wire traffic but, like anti-entropy, not
        charged to the writer's receipt (extras are maintained in the
        background)."""
        extras = self.extras.get(key)
        if not extras:
            return
        payload = encoded_size(postings)
        for node in extras:
            if not node.alive:
                continue
            getattr(node.store, op)(key, postings)
            node.versions[key] = stamp
            self.net.meter.record("postings", payload)
            self.ledger.record_write(key, node.peer_index, payload)

    def propagate_delete(self, key, posting, stamp):
        """Mirror a delete onto the key's hot extra copies."""
        for node in self.extras.get(key, []):
            if node.alive and key in node.store:
                node.store.delete(key, posting)
                node.versions[key] = stamp

    # -- hot-key promotion / demotion -------------------------------------

    def _maybe_promote(self, key):
        net = self.net
        if self.ledger.key_rate(key) < self.hot_key_threshold:
            return
        existing = [
            n for n in self.extras.get(key, []) if n.alive and key in n.store
        ]
        want = self.hot_key_copies - len(existing)
        if want <= 0:
            self.extras[key] = existing
            return
        replicas = self.net.replica_nodes(key)
        holders = [n for n in net.alive_nodes() if key in n.store]
        if not holders:
            return
        source = max(
            holders,
            key=lambda n: (n.versions.get(key, 0), n.store.count(key), -n.peer_index),
        )
        taken = {id(n) for n in replicas}
        taken.update(id(n) for n in existing)
        candidates = sorted(
            (
                n
                for n in net.alive_nodes()
                if id(n) not in taken and key not in n.store
            ),
            key=lambda n: (self.ledger.peer_load(n.peer_index), n.peer_index),
        )
        postings = source.store.get(key)
        version = source.versions.get(key, 0)
        payload = encoded_size(postings)
        for node in candidates[:want]:
            net._sync_copy(node, key, postings, version=version)
            net.meter.record("postings", payload)
            self.ledger.record_write(key, node.peer_index, payload)
            existing.append(node)
            self.promotions += 1
            self._observe("promote", key)
        if existing:
            self.extras[key] = existing

    def _demote_cold(self):
        """Drop extra copies of keys whose read rate has decayed away."""
        if self.hot_key_threshold is None:
            return
        net = self.net
        exit_rate = self.hot_key_threshold * 0.5
        for key in sorted(self.extras):
            if self.ledger.key_rate(key) >= exit_rate:
                continue
            for node in self.extras.pop(key):
                if not node.alive or key not in node.store:
                    continue
                if node in net.replica_nodes(key):
                    continue  # churn made it a real replica: keep the copy
                others = [
                    n
                    for n in net.alive_nodes()
                    if n is not node and key in n.store
                ]
                mine = (node.versions.get(key, 0), node.store.count(key))
                if not others or mine > max(
                    (n.versions.get(key, 0), n.store.count(key))
                    for n in others
                ):
                    # this extra is the freshest (or only) surviving copy
                    # — e.g. the owner crashed after an acked write only
                    # the extra received; dropping it would lose acked
                    # postings, so it stays until repair catches the set up
                    continue
                node.store.delete(key)
                node.versions.pop(key, None)
                self.demotions += 1
                self._observe("demote", key)

    # -- rebalance clock ---------------------------------------------------

    def tick(self):
        """One balance round: decay rates, demote cooled keys, run a
        rebalance pass.  Returns the pass's
        :class:`~repro.balance.rebalancer.RebalanceReport`."""
        self.ledger.tick()
        self._demote_cold()
        report = self.rebalancer.run_pass()
        if report.migrations:
            self._observe("migrate", "%d keys" % report.keys_moved)
        return report

    def maybe_tick(self, now_s):
        """Advance the rebalance clock to ``now_s`` (serving engine hook)."""
        if not self.rebalance_interval_s:
            return
        if self._next_tick is None:
            self._next_tick = self.rebalance_interval_s
        while now_s + _EPS >= self._next_tick:
            self.tick()
            self._next_tick += self.rebalance_interval_s

    # -- introspection -----------------------------------------------------

    @property
    def extra_copies(self):
        return sum(len(nodes) for nodes in self.extras.values())

    def summary(self):
        """Flat counters for ``repro stats`` / metrics."""
        return {
            "read_policy": self.read_policy,
            "fanout_reads": self.fanout_reads,
            "hot_keys": len(self.extras),
            "extra_copies": self.extra_copies,
            "promotions": self.promotions,
            "demotions": self.demotions,
            "migrations": self.rebalancer.migrations,
            "keys_moved": self.rebalancer.keys_moved,
            "bytes_moved": self.rebalancer.bytes_moved,
        }

    def _observe(self, kind, key):
        """Counter bump + instant span, like the fault layer's observer."""
        metrics = self.net.metrics
        if metrics is not None:
            metrics.counter("balance_events_total", kind=kind).inc()
        tracer = self.net.tracer
        if tracer is not None and tracer.active:
            ctx = tracer.context
            tracer.add(
                "balance:%s %s" % (kind, key),
                "balance",
                "balance",
                ctx.now(),
                0.0,
                args={"kind": kind, "key": str(key)},
                parent=ctx.parent_id,
            )
