"""Load balancing: accounting, read fan-out, hot copies, rebalancing.

Section 8 lists load balancing among the future targets, and the DBLP
workload makes the need concrete: term popularity is Zipfian, so the
peers owning the hottest posting lists saturate first (the queue-wait
spans of the concurrent serving engine pile up on their egress links).
This package is the adaptive-redistribution layer:

* :class:`~repro.balance.ledger.LoadLedger` — per-key and per-peer
  read/write traffic accounting in simulated time, with decayed rates;
* :class:`~repro.balance.balancer.LoadBalancer` — the
  :attr:`DhtNetwork.balancer <repro.dht.network.DhtNetwork>` hook:
  read-policy holder selection over the replica set (``owner`` |
  ``round_robin`` | ``least_loaded``), popularity-driven extra
  replication of hot keys onto cold peers with decay-based demotion,
  and synchronous write propagation that keeps every extra copy fresh;
* :class:`~repro.balance.rebalancer.Rebalancer` — the background pass
  migrating whole keys (their alias group: term, DPP root, first data
  block) off overloaded peers via the same versioned handover used by
  ``_rehome_key`` and anti-entropy repair.

Everything is deterministic and strictly opt-in: the default policy
(``owner``, no thresholds, no rebalance interval) is byte-identical to
the pre-balancing code path — the ledger observes, nothing else engages.
"""

from repro.balance.balancer import LoadBalancer
from repro.balance.ledger import LoadLedger
from repro.balance.rebalancer import RebalanceReport, Rebalancer

__all__ = ["LoadBalancer", "LoadLedger", "Rebalancer", "RebalanceReport"]
