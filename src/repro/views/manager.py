"""The view manager: catalog, rewriting, and incremental maintenance.

This is the serving-stack facade of the views subsystem.  The catalog of
view definitions follows the ViP2P model: the authoritative copy lives in
the DHT — a directory object under the well-known key ``viewdir`` plus one
``viewdef:<view_id>`` record per view — and every catalog *change* is
advertised to all peers (a metered control broadcast, charged to the
operation that caused it).  Queries therefore consult their peer's local
catalog copy for free; only catalog updates, never lookups, put bytes on
the wire.  In this in-process simulation one shared dict models the
disseminated copies.

Query path (:meth:`ViewManager.pre_query`): count the query's popularity,
find materialized views that subsume the query, pick the cheapest, compare
it against the base-index cost the materializing run measured (cost-based
choice), fetch the view's blocks, and hand the executor the candidate
document set — the document phase then runs unchanged, which is what makes
view-served answers identical to base evaluation.

Hot queries materialize themselves: when a canonical pattern has been asked
``view_auto_materialize_after`` times with no subsuming view, the manager
evaluates it once through the base executor (guarded against recursion) and
freezes the answer's root postings as clustered blocks.  The triggering
query is charged the materialization cost — the cache is an investment that
the warm phase pays back.

Maintenance (:meth:`on_publish` / :meth:`on_unpublish`): the publishing
peer evaluates each materialized view's pattern against the document being
added or withdrawn — publication is the rare, local operation — and routes
exactly the matching root postings into or out of the view's blocks.
"""

from repro.postings.plist import PostingList
from repro.query.index_plan import build_index_plan
from repro.query.matcher import match_document, match_to_postings
from repro.views.definition import ViewDefinition, canonical_pattern
from repro.views.rewrite import equivalent, pick_view, subsumes, view_beats_base
from repro.views.store import ViewBlockStore, ViewIntegrityError

#: DHT key of the catalog directory object
DIRECTORY_KEY = "viewdir"

#: fixed directory-object header bytes
DIRECTORY_HEADER_BYTES = 16


def view_record_key(view_id):
    """DHT key of one view's catalog record."""
    return "viewdef:%s" % view_id


class ViewOutcome:
    """What consulting the rewriter produced for one query.

    ``docs is None`` means the query falls back to the base index (no
    usable view, or the cost-based choice preferred base); ``overhead_s``
    is then the time spent deciding (materialization attempts, mostly),
    which the executor adds to the index phase.  On a hit, ``time_s`` and
    ``ttfa_s`` replace the index phase entirely (decision + fetch + merge;
    plus the materialization cost when this very query triggered it)."""

    __slots__ = (
        "docs",
        "view_id",
        "exact",
        "postings",
        "time_s",
        "ttfa_s",
        "overhead_s",
        "materialized",
    )

    def __init__(
        self,
        docs=None,
        view_id=None,
        exact=False,
        postings=0,
        time_s=0.0,
        ttfa_s=0.0,
        overhead_s=0.0,
        materialized=False,
    ):
        self.docs = docs
        self.view_id = view_id
        self.exact = exact
        self.postings = postings
        self.time_s = time_s
        self.ttfa_s = ttfa_s
        self.overhead_s = overhead_s
        self.materialized = materialized

    @property
    def served(self):
        return self.docs is not None


class ViewManager:
    """One network's view subsystem: catalog + rewriter + maintenance."""

    def __init__(self, system):
        self.system = system
        self.store = ViewBlockStore(system)
        self.popularity = {}  # canonical pattern -> times queried
        self.hits = 0
        self.misses = 0
        self.materializations = 0
        self.maintenance_added = 0
        self.maintenance_removed = 0
        self.dematerializations = 0  # views dropped on integrity failure
        self._catalog = {}  # canonical -> ViewDefinition (disseminated copy)
        self._active = False  # recursion guard while materializing

    # -- catalog ---------------------------------------------------------------

    def catalog(self):
        """The (locally replicated) catalog: ``{canonical: ViewDefinition}``."""
        return self._catalog

    def _directory_bytes(self):
        return DIRECTORY_HEADER_BYTES + sum(
            view.encoded_bytes() for view in self._catalog.values()
        )

    def _publish_record(self, src_node, view):
        """Write the authoritative record + directory to the DHT and
        advertise the change to every peer.  Returns the simulated cost the
        *originating* operation pays (the broadcast itself is one direct
        hop per peer, in parallel)."""
        net = self.system.net
        receipt = net.put_object(
            src_node, view_record_key(view.view_id), view, view.encoded_bytes()
        )
        receipt.merge(
            net.put_object(
                src_node, DIRECTORY_KEY, self._catalog, self._directory_bytes()
            )
        )
        others = max(0, len(net.alive_nodes()) - 1)
        if others:
            net.meter.record("control", view.encoded_bytes() * others)
        return receipt.duration_s + net.cost.transfer_time(
            view.encoded_bytes(), hops=1
        )

    # -- materialization -------------------------------------------------------

    def materialize(self, pattern, src_peer, canonical=None):
        """Evaluate ``pattern`` once, freeze its answers as view blocks.

        Returns ``(view, simulated_cost_s)``; ``view`` is None when the
        pattern cannot be materialized (nothing indexable, or the base
        evaluation was incomplete — freezing a partial answer would lose
        documents forever)."""
        canonical = canonical or canonical_pattern(pattern)
        view = self._catalog.get(canonical)
        if view is not None and view.materialized:
            return view, 0.0
        try:
            build_index_plan(pattern)
        except ValueError:
            return None, 0.0  # no indexable term: not evaluable from the index
        self._active = True
        try:
            answers, report = self.system.executor.run(pattern, src_peer)
        finally:
            self._active = False
        if not report.complete:
            return None, report.response_time_s
        if view is None:
            view = ViewDefinition(pattern, canonical)
            self._catalog[canonical] = view
        root_id = pattern.root.node_id
        postings = PostingList()
        for answer in answers:
            postings.add(answer.binding_of(root_id))
        write_receipt = self.store.write_blocks(src_peer.node, view, postings)
        view.materialized = True
        # the statistic the cost-based choice uses: what the index phase of
        # the base evaluation actually put on the wire
        view.base_bytes = report.traffic.get("postings", 0) + report.traffic.get(
            "filters", 0
        )
        advertise_s = self._publish_record(src_peer.node, view)
        self.materializations += 1
        cost = report.response_time_s + write_receipt.duration_s + advertise_s
        return view, cost

    # -- the query path --------------------------------------------------------

    def pre_query(self, pattern, plan, src_peer):
        """Consult the rewriter for one query; see class docstring.

        Returns None only from inside a materialization (recursion guard);
        otherwise always a :class:`ViewOutcome`."""
        if self._active:
            return None
        config = self.system.config
        canonical = canonical_pattern(pattern)
        count = self.popularity.get(canonical, 0) + 1
        self.popularity[canonical] = count

        candidates = [
            view
            for view in self._catalog.values()
            if view.materialized and subsumes(view.pattern, pattern)
        ]
        materialized_now = False
        mat_s = 0.0
        if (
            not candidates
            and config.view_auto_materialize_after is not None
            and count >= config.view_auto_materialize_after
        ):
            view, mat_s = self.materialize(pattern, src_peer, canonical)
            if view is not None:
                candidates = [view]
                materialized_now = True
        if not candidates:
            self.misses += 1
            return ViewOutcome(overhead_s=mat_s)

        view = pick_view(candidates)
        decision_s = 0.0
        if config.view_cost_based and not materialized_now:
            wins, stats_s = view_beats_base(
                view, plan, self.system.optimizer, src_peer
            )
            decision_s = stats_s
            if not wins:
                self.misses += 1
                return ViewOutcome(overhead_s=decision_s)

        merged, fetch_s, first_s, _nbytes = self.store.fetch_all(
            src_peer.node, view
        )
        if len(merged) != view.total_postings:
            # integrity check: the fetched blocks disagree with the
            # catalog metadata — a single-copy block holder crashed, or a
            # maintenance delta landed on a successor while the real copy
            # sits on a downed disk.  Serving from this view would
            # silently lose answers, so treat it as a miss and fall back
            # to the base index, charging the wasted probe
            self.misses += 1
            return ViewOutcome(overhead_s=decision_s + mat_s + fetch_s)
        merge_s = self.system.net.cost.join_time(len(merged))
        exact = view.canonical == canonical or equivalent(view.pattern, pattern)
        self.hits += 1
        return ViewOutcome(
            docs=set(merged.doc_ids()),
            view_id=view.view_id,
            exact=exact,
            postings=len(merged),
            time_s=decision_s + mat_s + fetch_s + merge_s,
            ttfa_s=decision_s + mat_s + first_s + merge_s,
            materialized=materialized_now,
        )

    # -- incremental maintenance -----------------------------------------------

    def _root_postings(self, pattern, peer, doc_index, document):
        """The root postings ``document`` contributes to ``pattern``."""
        postings = PostingList()
        root_id = pattern.root.node_id
        for match in match_document(pattern, document):
            bound = match_to_postings(match, peer.index, doc_index)
            postings.add(bound[root_id])
        return postings

    def on_publish(self, peer, doc_index, document):
        """Route a newly published document's deltas into live views."""
        added = 0
        for view in self._catalog.values():
            if not view.materialized:
                continue
            # the base index grew: the base-cost statistic cached at
            # materialization time no longer describes it, so drop it and
            # let the next cost-based decision re-measure (and re-cache).
            # This holds even when the document contributes no answer
            # postings — its terms still widened the base posting lists
            view.base_bytes = None
            postings = self._root_postings(view.pattern, peer, doc_index, document)
            if not len(postings):
                continue
            try:
                self.store.append(peer.node, view, postings)
            except ViewIntegrityError:
                self._dematerialize(peer.node, view)
                continue
            self._publish_record(peer.node, view)
            added += len(postings)
        self.maintenance_added += added
        return added

    def on_unpublish(self, peer, doc_index, document):
        """Remove a withdrawn document's postings from live views."""
        removed = 0
        for view in self._catalog.values():
            if not view.materialized:
                continue
            # mirror of on_publish: the withdrawn document shrank the base
            # index, so the cached base-cost statistic is stale — without
            # this, a warm view keeps comparing against the pre-unpublish
            # base bytes and the cost-based gate serves from whichever side
            # the dead statistic favours
            view.base_bytes = None
            postings = self._root_postings(view.pattern, peer, doc_index, document)
            if not len(postings):
                continue
            try:
                count, _receipt = self.store.delete_doc(
                    peer.node, view, (peer.index, doc_index), postings.items()
                )
            except ViewIntegrityError:
                self._dematerialize(peer.node, view)
                continue
            self._publish_record(peer.node, view)
            removed += count
        self.maintenance_removed += removed
        return removed

    def _dematerialize(self, src_node, view):
        """Drop a view whose single-copy block state can no longer be
        incrementally maintained (:class:`ViewIntegrityError`): the
        catalog entry survives with its popularity, so a later hot query
        re-materializes it from the base index.  Reachable block copies
        are deleted best-effort; stranded ones are garbage under never
        -reused block keys."""
        for block in view.blocks:
            holder, _hops = self.system.net.route(src_node, block.key)
            if block.key in holder.store:
                holder.store.delete(block.key)
        view.materialized = False
        view.blocks = []
        view.base_bytes = None
        self.dematerializations += 1
        self._publish_record(src_node, view)

    # -- introspection ---------------------------------------------------------

    def storage_by_peer(self):
        """Per-peer view-block storage: ``{peer_index: (blocks, bytes)}``."""
        from repro.postings.encoder import encoded_size

        usage = {}
        for node in self.system.net.alive_nodes():
            blocks = 0
            nbytes = 0
            for key in node.store.terms():
                if not key.startswith("viewblk:"):
                    continue
                blocks += 1
                nbytes += encoded_size(node.store.get(key))
            if blocks:
                usage[node.peer_index] = (blocks, nbytes)
        return usage
