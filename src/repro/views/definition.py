"""View definitions: canonicalized tree patterns with stable DHT ids.

A view is defined by a tree pattern (labels, words, value conditions, the
three axes), exactly the query model of Section 2.  Two syntactically
different queries with the same pattern tree — predicates reordered, say —
must map to the same view, so identity is the *canonical form*: a
deterministic serialization with children sorted, independent of parse
order.  The view id is a stable hash of the canonical form; it keys the
view's catalog record and the pseudo-keys of its answer blocks, so the DHT
scatters different views (and different blocks of one view) over distinct
peers, like the DPP's ``overflow:i:a`` keys.
"""

from repro.util.hashing import stable_hash

#: estimated catalog bytes per block entry (two doc ids, key, counters)
BLOCK_REF_BYTES = 40


def canonical_pattern(pattern):
    """Deterministic canonical form of a tree pattern.

    Children are sorted by their own canonical forms, so predicate order
    (``//a[//b][//c]`` vs ``//a[//c][//b]``) does not change identity.
    """
    return _canon(pattern.root)


def _canon(node):
    if node.is_word:
        head = "w=%s" % node.word
    elif node.is_wildcard:
        head = "*"
    else:
        head = "l=%s" % node.label
    if node.value_equals is not None:
        head += "{=%s}" % node.value_equals
    kids = sorted(_canon(child) for child in node.children)
    return "%s%s(%s)" % (node.axis.value, head, ";".join(kids))


def view_id_of(canonical):
    """Stable 64-bit hex id of a canonical pattern."""
    return "%016x" % stable_hash(canonical, seed=31)


def block_key(view_id, seq):
    """DHT pseudo-key of one answer block (scatters blocks over peers)."""
    return "viewblk:%d:%s" % (seq, view_id)


class ViewBlock:
    """One clustered answer block: where it lives and what doc range it
    covers (the DPP-style condition that enables targeted maintenance)."""

    __slots__ = ("key", "lo_doc", "hi_doc", "count", "nbytes")

    def __init__(self, key, lo_doc, hi_doc, count, nbytes):
        self.key = key
        self.lo_doc = lo_doc  # (peer, doc) of the first posting
        self.hi_doc = hi_doc  # (peer, doc) of the last posting
        self.count = count
        self.nbytes = nbytes

    def __repr__(self):
        return "ViewBlock(%s, docs %s..%s, %d postings)" % (
            self.key,
            self.lo_doc,
            self.hi_doc,
            self.count,
        )


class ViewDefinition:
    """One catalog entry: the pattern, its identity, and its blocks.

    ``blocks`` lists the clustered answer blocks in ``(p, d)`` order; a
    view with ``materialized=False`` is registered but not yet usable
    (popularity is being counted toward the auto-materialization
    threshold).
    """

    __slots__ = (
        "pattern",
        "canonical",
        "view_id",
        "blocks",
        "materialized",
        "next_seq",
        "base_bytes",
    )

    def __init__(self, pattern, canonical=None):
        self.pattern = pattern
        self.canonical = canonical or canonical_pattern(pattern)
        self.view_id = view_id_of(self.canonical)
        self.blocks = []
        self.materialized = False
        self.next_seq = 0
        # index-phase wire bytes the materializing run measured: the cached
        # statistic the cost-based view-vs-base choice compares against
        self.base_bytes = None

    def new_seq(self):
        seq = self.next_seq
        self.next_seq += 1
        return seq

    @property
    def total_postings(self):
        return sum(block.count for block in self.blocks)

    @property
    def total_bytes(self):
        return sum(block.nbytes for block in self.blocks)

    def encoded_bytes(self):
        """Catalog wire size of this record (definition + block refs)."""
        return 32 + len(self.canonical) + BLOCK_REF_BYTES * len(self.blocks)

    def target_block(self, doc_id):
        """The block a posting of ``doc_id`` should maintain into.

        Blocks partition the ``(p, d)`` order; a posting goes to the last
        block starting at or before its document, or to the first block."""
        chosen = self.blocks[0]
        for block in self.blocks:
            if block.lo_doc is None or block.lo_doc <= doc_id:
                chosen = block
            else:
                break
        return chosen

    def __repr__(self):
        return "ViewDefinition(%s, %s, %d blocks, %d postings)" % (
            self.view_id,
            self.canonical,
            len(self.blocks),
            self.total_postings,
        )
