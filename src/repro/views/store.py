"""Clustered storage of materialized view answers in the DHT.

A view's answer postings (the root bindings of every document matching the
view pattern) are kept in ``(p, d, sid)`` order and cut into blocks of at
most ``view_block_entries`` postings, each stored under its own pseudo-key
``viewblk:<seq>:<view_id>`` — the DPP's block layout, reused: the DHT
scatters the blocks over peers, fetches run with degree-K parallelism, and
blocks that overflow under maintenance split in two exactly like DPP data
blocks.  Postings travel in the standard delta-varint codec, and every
transfer is metered under the dedicated ``views`` traffic category so
experiments can separate cache traffic from base-index traffic.
"""

from repro.dht.network import OpReceipt
from repro.postings.encoder import encoded_size
from repro.postings.plist import PostingList
from repro.sim.tasks import Scheduler
from repro.views.definition import ViewBlock, block_key

#: traffic-meter category for view fetch and maintenance transfers
VIEW_TRAFFIC = "views"


class ViewIntegrityError(Exception):
    """A block's routed holder disagrees with the catalog metadata.

    View blocks are single-copy: when the holder a block key routes to no
    longer has the postings the catalog says it has (its real holder
    crashed and routing moved on, or a partial delete drifted), an
    in-place mutation would silently discard the unreachable postings.
    The manager reacts by dematerializing the view — incremental
    maintenance falls back to recompute exactly when its base is lost."""


class ViewBlockStore:
    """Reads and writes one network's view answer blocks."""

    def __init__(self, system):
        self.system = system

    @property
    def net(self):
        return self.system.net

    @property
    def max_block_entries(self):
        return self.system.config.view_block_entries

    # -- materialization -------------------------------------------------------

    def write_blocks(self, src_node, view, postings):
        """Store ``postings`` as fresh clustered blocks of ``view``.

        Used once per materialization; returns an :class:`OpReceipt` whose
        duration covers routing each block to its holder (blocks ship in
        parallel: the makespan is scheduled over egress/ingress links)."""
        postings = (
            postings
            if isinstance(postings, PostingList)
            else PostingList(postings)
        )
        receipt = OpReceipt()
        scheduler = Scheduler()
        egress = scheduler.add_resource("egress", 1)  # one materializing peer
        chunks = (
            list(postings.chunks(self.max_block_entries)) if len(postings) else []
        )
        for chunk in chunks:
            seq = view.new_seq()
            key = block_key(view.view_id, seq)
            holder, hops = self.net.route(src_node, key)
            payload = encoded_size(chunk)
            self.net.meter.record(VIEW_TRAFFIC, payload * max(1, hops))
            receipt.hops += hops
            receipt.request_bytes += payload * max(1, hops)
            before = holder.store.stats.snapshot()
            holder.store.append(key, chunk)
            store_s = holder.store.stats.delta_since(before).cost_seconds(
                self.net.cost
            )
            ingress = "ingress:%d" % holder.peer_index
            if not scheduler.has_resource(ingress):
                scheduler.add_resource(ingress, 1)
            scheduler.add_task(
                "viewblk:%d" % seq,
                self.net.cost.transfer_time(payload, hops=max(1, hops)) + store_s,
                resources=(egress, ingress),
            )
            view.blocks.append(
                ViewBlock(
                    key,
                    chunk.first.doc_id,
                    chunk.last.doc_id,
                    len(chunk),
                    payload,
                )
            )
        receipt.duration_s += scheduler.run()
        return receipt

    # -- incremental maintenance ------------------------------------------------

    def append(self, src_node, view, postings):
        """Route a publish delta into the view's blocks (splitting on
        overflow), keeping the catalog's ranges/counts current."""
        postings = (
            postings
            if isinstance(postings, PostingList)
            else PostingList(postings)
        )
        receipt = OpReceipt()
        if not len(postings):
            return receipt
        if not view.blocks:
            return receipt.merge(self.write_blocks(src_node, view, postings))
        groups = {}
        for posting in postings:
            block = view.target_block(posting.doc_id)
            groups.setdefault(block.key, (block, []))[1].append(posting)
        for block, group in groups.values():
            receipt.merge(self._append_to_block(src_node, view, block, group))
        return receipt

    def _append_to_block(self, src_node, view, block, group):
        receipt = OpReceipt()
        holder, hops = self.net.route(src_node, block.key)
        # verify before mutating in place: appending to a holder that
        # lacks the block's postings would make _refresh_block shrink the
        # catalog count to just the delta, losing the old answers
        if holder.store.count(block.key) != block.count:
            raise ViewIntegrityError(block.key)
        payload = encoded_size(group)
        self.net.meter.record(VIEW_TRAFFIC, payload * max(1, hops))
        receipt.hops += hops
        receipt.request_bytes += payload * max(1, hops)
        receipt.duration_s += self.net.cost.transfer_time(payload, hops=max(1, hops))
        before = holder.store.stats.snapshot()
        holder.store.append(block.key, group)
        receipt.duration_s += holder.store.stats.delta_since(before).cost_seconds(
            self.net.cost
        )
        self._refresh_block(holder, block, group)
        if holder.store.count(block.key) > self.max_block_entries:
            receipt.merge(self._split_block(src_node, view, block, holder))
        return receipt

    def _refresh_block(self, holder, block, group):
        lo, hi = min(group).doc_id, max(group).doc_id
        block.lo_doc = lo if block.lo_doc is None else min(block.lo_doc, lo)
        block.hi_doc = hi if block.hi_doc is None else max(block.hi_doc, hi)
        block.count = holder.store.count(block.key)
        block.nbytes = encoded_size(holder.store.get(block.key))

    def _split_block(self, src_node, view, block, holder):
        """Split an overfull block; the upper half moves to a fresh key.

        Recurses while either half still exceeds the block size — a single
        maintenance delta can overflow a block by more than 2x."""
        receipt = OpReceipt()
        data = holder.store.get(block.key)
        lower, upper = data.split_at(len(data) // 2)
        holder.store.delete(block.key)
        holder.store.append(block.key, lower)
        block.lo_doc = lower.first.doc_id
        block.hi_doc = lower.last.doc_id
        block.count = len(lower)
        block.nbytes = encoded_size(lower)

        seq = view.new_seq()
        new_key = block_key(view.view_id, seq)
        new_holder, hops = self.net.route(src_node, new_key)
        payload = encoded_size(upper)
        self.net.meter.record(VIEW_TRAFFIC, payload * max(1, hops))
        receipt.request_bytes += payload * max(1, hops)
        receipt.duration_s += self.net.cost.transfer_time(payload, hops=max(1, hops))
        before = new_holder.store.stats.snapshot()
        new_holder.store.append(new_key, upper)
        receipt.duration_s += new_holder.store.stats.delta_since(
            before
        ).cost_seconds(self.net.cost)
        new_block = ViewBlock(
            new_key,
            upper.first.doc_id,
            upper.last.doc_id,
            len(upper),
            payload,
        )
        view.blocks.insert(view.blocks.index(block) + 1, new_block)
        if len(lower) > self.max_block_entries:
            receipt.merge(self._split_block(src_node, view, block, holder))
        if len(upper) > self.max_block_entries:
            receipt.merge(
                self._split_block(src_node, view, new_block, new_holder)
            )
        return receipt

    def delete_doc(self, src_node, view, doc_id, postings):
        """Remove an unpublished document's postings from the view.

        ``postings`` are the exact root postings the document contributed
        (recomputed locally by the withdrawing peer).  Returns the number
        removed."""
        removed = 0
        receipt = OpReceipt()
        for block in view.blocks:
            if block.lo_doc is not None and (
                doc_id < block.lo_doc or doc_id > block.hi_doc
            ):
                continue
            holder, hops = self.net.route(src_node, block.key)
            # same verify-before-mutate guard as _append_to_block: a
            # delete applied to a stale or empty copy would leave the
            # catalog count describing postings nobody can reach
            if holder.store.count(block.key) != block.count:
                raise ViewIntegrityError(block.key)
            self.net.meter.record(VIEW_TRAFFIC, 32 * max(1, hops))
            receipt.duration_s += self.net.cost.transfer_time(32, hops=max(1, hops))
            changed = 0
            for posting in postings:
                if holder.store.delete(block.key, posting):
                    changed += 1
            if changed:
                removed += changed
                block.count = holder.store.count(block.key)
                remaining = holder.store.get(block.key)
                block.nbytes = encoded_size(remaining)
                if len(remaining):
                    block.lo_doc = remaining.first.doc_id
                    block.hi_doc = remaining.last.doc_id
        return removed, receipt

    # -- query-time fetch --------------------------------------------------------

    def fetch_all(self, src_node, view):
        """Bring every block of ``view`` to the query peer, in parallel.

        Returns ``(postings, makespan_s, first_block_s, total_bytes)``;
        transfers are scheduled degree-K parallel over per-holder egress
        links and the query peer's ingress, like DPP block fetches."""
        coalescer = self.net.coalescer
        if coalescer is not None:
            flight = coalescer.lookup("view", view.view_id)
            if flight is not None:
                # a concurrent query is already pulling this view's blocks:
                # share the in-flight transfer — the views catalog serves
                # the repeat without putting a second copy on the wire
                merged, makespan, first = flight.data
                return merged, makespan, first, 0
        scheduler = Scheduler()
        ingress = scheduler.add_resource(
            "ingress", self.system.config.parallelism
        )
        merged = PostingList()
        first = None
        total_bytes = 0
        for block in view.blocks:
            holder = self.net.owner_of(block.key)
            postings = holder.store.get(block.key)
            payload = encoded_size(postings)
            self.net.meter.record(VIEW_TRAFFIC, payload)
            total_bytes += payload
            merged = merged.merge(postings)
            duration = self.net.cost.disk_read_time(
                payload
            ) + self.net.cost.transfer_time(payload, hops=1)
            egress = "egress:%d" % holder.peer_index
            if not scheduler.has_resource(egress):
                scheduler.add_resource(egress, 1)
            scheduler.add_task(
                "viewfetch:%s" % block.key, duration, resources=(egress, ingress)
            )
            if first is None:
                first = duration
        makespan = scheduler.run()
        if coalescer is not None:
            coalescer.register(
                "view",
                view.view_id,
                (merged, makespan, first or 0.0),
                total_bytes,
                makespan,
            )
        return merged, makespan, first or 0.0, total_bytes
