"""Materialized tree-pattern views: a distributed query-result cache.

KadoP re-runs the full distributed twig join for every query, even when the
same popular pattern is asked thousands of times.  Following ViP2P (XML
views in P2P, by the same INRIA group) and LiquidXML's popularity-driven
placement, this package caches the *index phase* of hot queries in the DHT:

* :mod:`repro.views.definition` — tree-pattern view definitions with a
  canonical form and stable DHT ids;
* :mod:`repro.views.rewrite` — the pattern-embedding (containment) test
  that decides when a view can answer a query, plus the cost-based
  view-vs-base choice;
* :mod:`repro.views.store` — the materialized answer postings, kept as
  clustered DHT blocks (posting codec + DPP-style block layout);
* :mod:`repro.views.manager` — the serving-stack facade: view catalog in
  the DHT, query-time rewriting, popularity-driven auto-materialization,
  and incremental maintenance on publish/unpublish.

A view caches candidate documents, not final answers: the document phase
still evaluates the query exactly on each candidate, so view-served answers
are always element-for-element identical to base-index evaluation (the
document phase doubles as the compensation filter when the view is strictly
more general than the query).
"""

from repro.views.definition import ViewBlock, ViewDefinition, canonical_pattern
from repro.views.manager import ViewManager, ViewOutcome
from repro.views.rewrite import subsumes

__all__ = [
    "ViewBlock",
    "ViewDefinition",
    "ViewManager",
    "ViewOutcome",
    "canonical_pattern",
    "subsumes",
]
