"""View-based rewriting: pattern embedding and the view-vs-base choice.

A materialized view V can answer a query Q when V *subsumes* Q at the
document level: every document holding a match of Q also holds a match of
V, so the view's cached document set is a complete candidate set for Q.
The sufficient condition implemented here is the classic tree-pattern
homomorphism (Miklau & Suciu's containment fragment): a mapping h from V's
nodes into Q's nodes that preserves node tests and weakens axes —

* a label node maps to a node with the same label; ``*`` maps to anything;
  a word node maps to the same word; a value condition on V must reappear
  verbatim on the image;
* a child edge of V maps to a child edge of Q;
* a descendant edge maps to any downward Q-path that guarantees *proper*
  descent (at least one ``/`` or ``//`` edge on the path — ``.//`` edges,
  used for ``contains`` word nodes, admit self);
* a descendant-or-self edge maps to any downward path, including self.

The test is sound but not complete (no disjunction reasoning), which is the
right trade-off for a rewriter: a missed rewriting costs performance, a
wrong one would cost answers.  When V is strictly more general than Q the
document phase — which always evaluates Q exactly on every candidate —
acts as the compensation filter, so answers never change.
"""

from repro.query.pattern import Axis


def subsumes(view_pattern, query_pattern):
    """True if every document matching ``query_pattern`` also matches
    ``view_pattern`` (so the view's documents cover the query's)."""
    vroot = view_pattern.root
    qnodes = query_pattern.nodes()
    if vroot.axis is Axis.CHILD:
        # an absolute view (/a) only covers absolute queries on the root
        qroot = query_pattern.root
        return qroot.axis is Axis.CHILD and _maps_to(vroot, qroot)
    return any(_maps_to(vroot, qnode) for qnode in qnodes)


def _node_compatible(vnode, qnode):
    if vnode.is_word:
        if not (qnode.is_word and vnode.word == qnode.word):
            return False
    elif not vnode.is_wildcard:
        if qnode.is_word or qnode.label != vnode.label:
            return False
    if vnode.value_equals is not None and qnode.value_equals != vnode.value_equals:
        return False
    return True


def _maps_to(vnode, qnode):
    """Can the subtree of ``vnode`` embed at ``qnode``?"""
    if not _node_compatible(vnode, qnode):
        return False
    for vchild in vnode.children:
        if not any(
            _maps_to(vchild, target)
            for target in _axis_targets(vchild.axis, qnode)
        ):
            return False
    return True


def _axis_targets(axis, qnode):
    """Q-nodes a V-child with ``axis`` may map to, below ``qnode``."""
    if axis is Axis.CHILD:
        return [c for c in qnode.children if c.axis is Axis.CHILD]
    targets = []
    stack = [(c, c.axis is not Axis.DESCENDANT_OR_SELF) for c in qnode.children]
    while stack:
        node, proper = stack.pop()
        # DESCENDANT requires guaranteed proper descent; DESCENDANT_OR_SELF
        # accepts any downward path
        if proper or axis is Axis.DESCENDANT_OR_SELF:
            targets.append(node)
        stack.extend(
            (c, proper or c.axis is not Axis.DESCENDANT_OR_SELF)
            for c in node.children
        )
    return targets


def equivalent(view_pattern, query_pattern):
    """Document-level equivalence (containment both ways)."""
    return subsumes(view_pattern, query_pattern) and subsumes(
        query_pattern, view_pattern
    )


def pick_view(candidates):
    """The cheapest usable view: fewest stored bytes, id as tie-break."""
    return min(candidates, key=lambda v: (v.total_bytes, v.view_id))


def view_beats_base(view, plan, optimizer, src_peer):
    """The cost-based choice: is serving from ``view`` cheaper than the
    base index?

    Materialized views carry the base cost their materializing run measured
    (``view.base_bytes``), so the usual decision is free.  For records
    without the cached statistic — fresh records, or views whose statistic
    was invalidated by maintenance (publish/unpublish deltas change the
    base index) — the optimizer's statistics round is run live (and
    charged), and its result is cached back on the view so subsequent
    decisions are free again until the next maintenance event.  Returns
    ``(view_wins, stats_time_s)``."""
    if view.base_bytes is not None:
        return view.total_bytes < view.base_bytes, 0.0
    base, stats_s = base_index_bytes(plan, optimizer, src_peer)
    view.base_bytes = base
    return view.total_bytes < base, stats_s


def base_index_bytes(plan, optimizer, src_peer):
    """Estimated wire bytes of answering from the base Term index.

    Uses the strategy optimizer's statistics round (charged as control
    traffic, like ``filter_strategy="auto"``); the estimate is the best
    strategy's, so views only win when they beat the optimizer's best
    base-index plan.  Returns ``(bytes_estimate, stats_time_s)``.
    """
    total = 0.0
    slowest = 0.0
    for component in plan.components:
        stats, stats_time = optimizer.gather_stats(component, src_peer)
        slowest = max(slowest, stats_time)
        if len(component) == 1:
            total += sum(s.wire_bytes for s in stats.values())
            continue
        if any(s.postings == 0 for s in stats.values()):
            continue
        estimates = optimizer.estimate_all(component, stats)
        total += min(estimates.values())
    return total, slowest
