"""The PAST-style baseline store (Section 3, "Improving indexing time").

PAST kept each key's value as a gzipped XML file.  Every ``put`` of a new
posting (1) reads and decompresses the old value, (2) reconciles it with
the new entries, and (3) recompresses and rewrites the whole result —
linear work per insert, hence quadratic publishing cost overall.

The in-memory payload here is kept in the library's compact binary format
(so tests and experiments run fast), but the *accounted* I/O and CPU
reproduce the PAST representation:

* each read/write is charged ``XML_ENTRY_BYTES`` per posting — the size of
  one ``<posting p=".." d=".." .../>`` element after gzip;
* each reconcile is charged one store op per entry touched (decompress,
  XML-parse, merge, re-serialize are all linear in the value length).

This is what makes the Section 3 store ablation reproduce the paper's
two-to-three orders of magnitude publishing gap at realistic list sizes.
"""

import zlib

from repro.postings.encoder import decode_postings, encode_postings
from repro.postings.plist import PostingList
from repro.storage.api import Store

#: gzipped size of one posting in PAST's XML value format
XML_ENTRY_BYTES = 16


class NaiveGzipStore(Store):
    """Read-modify-write compressed blob per term."""

    def __init__(self, compression_level=1):
        super().__init__()
        self._blobs = {}
        self._counts = {}
        self._level = compression_level

    def _read(self, term):
        blob = self._blobs.get(term)
        if blob is None:
            return PostingList()
        count = self._counts[term]
        self.stats.bytes_read += XML_ENTRY_BYTES * count
        self.stats.num_ops += 1 + count  # decompress + parse each entry
        plist, _ = decode_postings(zlib.decompress(blob))
        return plist

    def _write(self, term, plist):
        self._blobs[term] = zlib.compress(encode_postings(plist), self._level)
        self._counts[term] = len(plist)
        self.stats.bytes_written += XML_ENTRY_BYTES * len(plist)
        self.stats.num_ops += 1 + len(plist)  # serialize + compress

    def put(self, term, postings):
        existing = self._read(term)
        existing.extend(postings)
        self._write(term, existing)

    def append(self, term, postings):
        # PAST has no append: it degenerates to the read-modify-write put.
        self.put(term, postings)

    def get(self, term):
        return self._read(term)

    def delete(self, term, posting=None):
        if term not in self._blobs:
            return False
        if posting is None:
            self._blobs.pop(term)
            count = self._counts.pop(term)
            self.stats.num_ops += 1
            self.stats.bytes_read += XML_ENTRY_BYTES * count
            return True
        existing = self._read(term)
        removed = existing.remove(posting)
        if removed:
            self._write(term, existing)
        return removed

    def terms(self):
        return iter(sorted(self._blobs))

    def count(self, term):
        return self._counts.get(term, 0)

    def stored_bytes(self):
        """Total compressed bytes currently held (store footprint)."""
        return sum(len(b) for b in self._blobs.values())
