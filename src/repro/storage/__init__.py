"""Per-peer local index stores (Section 3 of the paper).

KadoP originally used PAST's local storage, where every DHT ``put`` on an
existing key reads the old value, reconciles and rewrites it — quadratic in
the posting count.  The paper replaces it with a BerkeleyDB B+-tree holding
the ``Term`` relation as a clustered index and extends the DHT API with
``append`` for linear-cost indexing.  Both stores are implemented here, so
the 2–3 orders-of-magnitude publishing speedup of Section 3 can be
reproduced as an ablation:

* :class:`NaiveGzipStore` — the PAST-style read-modify-write store;
* :class:`BPlusTree` — a real paged B+-tree;
* :class:`ClusteredIndexStore` — the BerkeleyDB replacement, a clustered
  (term → ordered postings) index over the B+-tree with ``append``.
"""

from repro.storage.api import Store, StoreStats
from repro.storage.naive_store import NaiveGzipStore
from repro.storage.bptree import BPlusTree
from repro.storage.clustered import ClusteredIndexStore

__all__ = [
    "Store",
    "StoreStats",
    "NaiveGzipStore",
    "BPlusTree",
    "ClusteredIndexStore",
]
