"""The BerkeleyDB-replacement clustered index store (Section 3).

``Term_p`` at a peer is organized as a clustered index using the term as
search key, with the postings of each term in ``(p, d, sid)`` lexicographic
order.  We realize this over :class:`~repro.storage.bptree.BPlusTree` with
order-preserving composite keys ``encode(term) ++ encode(posting)``: a
term's postings are then exactly a contiguous key range of the tree, read
back in order by a prefix scan — the same access path a BerkeleyDB BTREE
database with sorted duplicates provides.

``append`` inserts each posting with O(log n) page I/O and never reads the
existing list, which is what makes publishing linear (vs. the quadratic
:class:`~repro.storage.naive_store.NaiveGzipStore`).
"""

import struct

from repro.postings.plist import PostingList
from repro.postings.posting import Posting
from repro.storage.api import Store
from repro.storage.bptree import BPlusTree

_POSTING_STRUCT = struct.Struct(">QQQQQ")
_TERMINATOR = b"\x00\x00"
_ESCAPED_NUL = b"\x00\x01"


def _encode_term(term):
    """Order-preserving, self-delimiting term encoding.

    NUL bytes inside the term are escaped so the terminator sorts below any
    continuation, preserving lexicographic order of the composite keys.
    """
    raw = term.encode("utf-8").replace(b"\x00", _ESCAPED_NUL)
    return raw + _TERMINATOR


def _composite_key(term, posting):
    return _encode_term(term) + _POSTING_STRUCT.pack(*posting)


def _decode_posting(key, prefix_len):
    return Posting(*_POSTING_STRUCT.unpack(key[prefix_len:]))


class ClusteredIndexStore(Store):
    """Clustered (term → ordered postings) store over a B+-tree."""

    def __init__(self, order=64):
        super().__init__()
        self._tree = BPlusTree(order=order)
        self._counts = {}

    def _charge(self, reads_before, writes_before):
        self.stats.bytes_read += (
            self._tree.pages_read - reads_before
        ) * self._tree.page_size
        self.stats.bytes_written += (
            self._tree.pages_written - writes_before
        ) * self._tree.page_size

    def append(self, term, postings):
        r, w = self._tree.pages_read, self._tree.pages_written
        added = self._tree.insert_many(
            (_composite_key(term, posting), b"") for posting in postings
        )
        if added:
            self._counts[term] = self._counts.get(term, 0) + added
        self.stats.num_ops += 1
        self._charge(r, w)
        return added

    def put(self, term, postings):
        # With a clustered index, "reconciling" a put is just an append:
        # duplicate composite keys overwrite in place.
        self.append(term, postings)

    def get(self, term):
        r, w = self._tree.pages_read, self._tree.pages_written
        prefix = _encode_term(term)
        items = [
            _decode_posting(key, len(prefix))
            for key, _ in self._tree.scan_prefix(prefix)
        ]
        self.stats.num_ops += 1
        self._charge(r, w)
        return PostingList(items, presorted=True)

    def get_range(self, term, lo, hi):
        """Postings of ``term`` in ``[lo, hi]`` straight off the tree.

        This is the access path DPP leaf fetches use: only the requested
        key range is read, so I/O is proportional to the block size.
        """
        r, w = self._tree.pages_read, self._tree.pages_written
        prefix = _encode_term(term)
        lo_key = prefix + _POSTING_STRUCT.pack(*lo)
        hi_key = prefix + _POSTING_STRUCT.pack(*hi) + b"\x00"
        items = [
            _decode_posting(key, len(prefix))
            for key, _ in self._tree.scan(lo=lo_key, hi=hi_key)
        ]
        self.stats.num_ops += 1
        self._charge(r, w)
        return PostingList(items, presorted=True)

    def delete(self, term, posting=None):
        r, w = self._tree.pages_read, self._tree.pages_written
        try:
            if posting is not None:
                removed = self._tree.delete(_composite_key(term, posting))
                if removed:
                    self._counts[term] -= 1
                    if not self._counts[term]:
                        del self._counts[term]
                return removed
            prefix = _encode_term(term)
            keys = [key for key, _ in self._tree.scan_prefix(prefix)]
            for key in keys:
                self._tree.delete(key)
            self._counts.pop(term, None)
            return bool(keys)
        finally:
            self.stats.num_ops += 1
            self._charge(r, w)

    def terms(self):
        return iter(sorted(self._counts))

    def count(self, term):
        return self._counts.get(term, 0)

    def total_postings(self):
        return sum(self._counts.values())

    def check_invariants(self):
        self._tree.check_invariants()
        assert len(self._tree) == self.total_postings()
