"""A log-structured per-peer store: memtable + sorted immutable runs.

The third storage backend next to the clustered B+-tree and the PAST-style
gzip store, modelled on the write path of LSM engines (and of the
WebContent XML Store's batched repository): an ``append`` lands in an
in-memory *memtable* and is charged only a sequential log write of the
batch's encoded bytes — no page reads, no in-place rewrites.  When the
memtable exceeds its capacity it is *flushed*: every term's buffered
postings are frozen into a sorted immutable *run* on the standard
delta-varint posting codec.  Reads reconstruct a term by merging its
fragments across the memtable and every run, newest layer winning —
which is the classic LSM trade: the cheapest possible ingest against
read amplification proportional to the number of runs.

Deletes are *tombstones*: a point delete records the posting key, a
whole-term delete records a drop marker; both are cheap blind writes.
Background *compaction* folds adjacent runs together (oldest first),
re-merging fragments and garbage-collecting tombstones once they reach
the bottom of the tree — after which a term's postings are contiguous
again and reads touch few runs.  Compaction ticks ride the serving clock
(:meth:`maybe_compact`), exactly like the load balancer's rebalance
passes, and is also applied inline when a flush leaves too many runs
(the stall real engines apply for the same reason).

Logical content is layer-order independent of physical layout: ``get``
returns the identical sorted duplicate-free :class:`PostingList` the
other backends return, so query answers are byte-identical across
backends (the differential suite in ``tests/test_write_path.py``).
"""

from repro.postings.encoder import decode_postings, encode_postings
from repro.postings.plist import PostingList
from repro.storage.api import Store

#: log-record bytes charged per tombstone (posting key or drop marker)
TOMBSTONE_BYTES = 16

#: memtable capacity, in buffered postings, before an automatic flush
DEFAULT_MEMTABLE_POSTINGS = 4096

#: flush-time bound on the number of runs before inline compaction
DEFAULT_MAX_RUNS = 8

#: simulated seconds between background compaction ticks on the serving
#: clock (one fold per tick, so serving pays small, bounded stalls)
DEFAULT_COMPACT_INTERVAL_S = 0.05


class _Run:
    """One sorted immutable run: per-term encoded postings + tombstones."""

    __slots__ = ("data", "counts", "dead", "dropped", "nbytes")

    def __init__(self, data, counts, dead, dropped):
        self.data = data  # term -> encoded postings blob
        self.counts = counts  # term -> postings in the blob
        self.dead = dead  # term -> set of posting keys to kill below
        self.dropped = dropped  # terms whose older fragments are dead
        self.nbytes = sum(len(blob) for blob in data.values()) + (
            TOMBSTONE_BYTES
            * (sum(len(keys) for keys in dead.values()) + len(dropped))
        )

    def terms(self):
        seen = set(self.data)
        seen.update(self.dead)
        seen.update(self.dropped)
        return seen


class LsmStore(Store):
    """Log-structured term → posting-list store (memtable + runs)."""

    def __init__(
        self,
        memtable_postings=DEFAULT_MEMTABLE_POSTINGS,
        max_runs=DEFAULT_MAX_RUNS,
        compact_interval_s=DEFAULT_COMPACT_INTERVAL_S,
    ):
        super().__init__()
        if memtable_postings < 1:
            raise ValueError("memtable_postings must be >= 1")
        if max_runs < 1:
            raise ValueError("max_runs must be >= 1")
        self._memtable_postings = memtable_postings
        self._max_runs = max_runs
        self._compact_interval_s = compact_interval_s
        self._mem = {}  # term -> PostingList (this epoch's additions)
        self._mem_dead = {}  # term -> set of posting keys deleted this epoch
        self._mem_dropped = set()  # whole-term deletes this epoch
        self._mem_entries = 0  # buffered postings (flush trigger)
        self._runs = []  # _Run, oldest first
        # authoritative live key set / counts (simulation metadata, like
        # the other backends' _counts; the physical layers must reconstruct
        # exactly this — check_invariants and the property suite assert it)
        self._keys = {}  # term -> set of posting tuples
        self._last_compact_s = None
        self.compactions = 0  # folds performed (stats surface)

    # -- write path ------------------------------------------------------------

    def append(self, term, postings):
        """Memtable insert: one sequential log write of the batch."""
        plist = (
            postings
            if isinstance(postings, PostingList)
            else PostingList(postings)
        )
        live = self._keys.setdefault(term, set())
        mem = self._mem.get(term)
        dead = self._mem_dead.get(term)
        added = 0
        for posting in plist:
            key = tuple(posting)
            if dead is not None:
                dead.discard(key)
            if key in live:
                continue
            live.add(key)
            if mem is None:
                mem = self._mem.setdefault(term, PostingList())
            mem.add(posting)
            added += 1
            self._mem_entries += 1
        self.stats.num_ops += 1
        self.stats.bytes_written += encoded_size_of(plist)
        if self._mem_entries >= self._memtable_postings:
            self.flush()
        return added

    def put(self, term, postings):
        # the memtable absorbs and deduplicates, so a reconciling put is
        # just an append — like the clustered store's
        self.append(term, postings)

    def delete(self, term, posting=None):
        """Blind tombstone write (plus the metadata presence check)."""
        live = self._keys.get(term)
        if posting is None:
            if not live:
                return False
            self._keys.pop(term, None)
            buffered = self._mem.pop(term, None)
            if buffered is not None:
                self._mem_entries -= len(buffered)
            self._mem_dead.pop(term, None)
            self._mem_dropped.add(term)
            self.stats.num_ops += 1
            self.stats.bytes_written += TOMBSTONE_BYTES
            return True
        key = tuple(posting)
        if not live or key not in live:
            return False
        live.discard(key)
        if not live:
            del self._keys[term]
        mem = self._mem.get(term)
        if mem is not None and mem.remove(posting):
            self._mem_entries -= 1
            if not len(mem):
                del self._mem[term]
        self._mem_dead.setdefault(term, set()).add(key)
        self.stats.num_ops += 1
        self.stats.bytes_written += TOMBSTONE_BYTES
        return True

    def flush(self):
        """Freeze the memtable into a new immutable run."""
        if not self._mem and not self._mem_dead and not self._mem_dropped:
            return False
        data = {}
        counts = {}
        for term, plist in self._mem.items():
            blob = encode_postings(plist)
            data[term] = blob
            counts[term] = len(plist)
            self.stats.bytes_written += len(blob)
        dead = {
            term: set(keys) for term, keys in self._mem_dead.items() if keys
        }
        dropped = set(self._mem_dropped)
        self.stats.bytes_written += TOMBSTONE_BYTES * (
            sum(len(keys) for keys in dead.values()) + len(dropped)
        )
        self.stats.num_ops += 1
        self._runs.append(_Run(data, counts, dead, dropped))
        self._mem = {}
        self._mem_dead = {}
        self._mem_dropped = set()
        self._mem_entries = 0
        while len(self._runs) > self._max_runs:
            self._compact_once()
        return True

    # -- compaction ------------------------------------------------------------

    def _compact_once(self):
        """Fold the two oldest runs into one (tombstones GC at the bottom)."""
        if len(self._runs) < 2:
            return False
        older, newer = self._runs[0], self._runs[1]
        self.stats.bytes_read += older.nbytes + newer.nbytes
        merged_data = {}
        merged_counts = {}
        merged_dead = {}
        merged_dropped = set()
        for term in older.terms() | newer.terms():
            base = PostingList()
            if term in older.data:
                base, _ = decode_postings(older.data[term])
            if term in newer.dropped:
                base = PostingList()
            else:
                kill = newer.dead.get(term)
                if kill:
                    base = base.filter(lambda p, k=kill: tuple(p) not in k)
            if term in newer.data:
                addition, _ = decode_postings(newer.data[term])
                base = base.merge(addition)
            if len(base):
                merged_data[term] = encode_postings(base)
                merged_counts[term] = len(base)
            # tombstones survive the fold only while older runs remain
            # below them; at the bottom of the tree they are garbage
            if term in older.dropped or term in newer.dropped:
                merged_dropped.add(term)
            keep_dead = older.dead.get(term, set()) | newer.dead.get(
                term, set()
            )
            if keep_dead:
                merged_dead[term] = set(keep_dead)
        bottom = self._runs[0] is older and len(self._runs) >= 2
        if bottom:
            merged_dead = {}
            merged_dropped = set()
        run = _Run(merged_data, merged_counts, merged_dead, merged_dropped)
        self.stats.bytes_written += run.nbytes
        self.stats.num_ops += 1
        self._runs[0:2] = [run]
        self.compactions += 1
        return True

    def compact_tick(self):
        """One background compaction step; returns True if a fold ran."""
        if len(self._runs) < 2:
            return False
        return self._compact_once()

    def maybe_compact(self, now_s):
        """Serving-clock hook: fold at most one pair per interval."""
        if self._compact_interval_s is None:
            return False
        if (
            self._last_compact_s is not None
            and now_s - self._last_compact_s < self._compact_interval_s
        ):
            return False
        self._last_compact_s = now_s
        return self.compact_tick()

    # -- read path -------------------------------------------------------------

    def _reconstruct(self, term, charge=True):
        """Merge a term's fragments across runs + memtable, oldest first."""
        acc = PostingList()
        probed = 0
        for run in self._runs:
            touched = False
            if term in run.dropped:
                acc = PostingList()
                touched = True
            else:
                kill = run.dead.get(term)
                if kill:
                    acc = acc.filter(lambda p, k=kill: tuple(p) not in k)
                    touched = True
            blob = run.data.get(term)
            if blob is not None:
                fragment, _ = decode_postings(blob)
                acc = acc.merge(fragment)
                if charge:
                    self.stats.bytes_read += len(blob)
                touched = True
            probed += touched
        if term in self._mem_dropped:
            acc = PostingList()
        kill = self._mem_dead.get(term)
        if kill:
            acc = acc.filter(lambda p, k=kill: tuple(p) not in k)
        mem = self._mem.get(term)
        if mem is not None:
            acc = acc.merge(mem)
        if charge:
            self.stats.num_ops += 1 + probed
        return acc

    def get(self, term):
        return self._reconstruct(term)

    def get_range(self, term, lo, hi):
        """Range read: the runs hold whole-term blobs, so the fragments are
        read in full and the range is cut after the merge (the honest LSM
        read-amplification story, vs. the B+-tree's page-ranged scan)."""
        return self._reconstruct(term).range(lo, hi)

    def terms(self):
        return iter(sorted(self._keys))

    def count(self, term):
        return len(self._keys.get(term, ()))

    def total_postings(self):
        return sum(len(keys) for keys in self._keys.values())

    # -- introspection ---------------------------------------------------------

    @property
    def num_runs(self):
        return len(self._runs)

    @property
    def memtable_entries(self):
        return self._mem_entries

    def stored_bytes(self):
        """Encoded bytes currently frozen in runs (store footprint)."""
        return sum(run.nbytes for run in self._runs)

    def check_invariants(self):
        """Physical layers must reconstruct the authoritative key sets."""
        for term in set(self._keys) | set(self._mem) | {
            t for run in self._runs for t in run.terms()
        }:
            rebuilt = {tuple(p) for p in self._reconstruct(term, charge=False)}
            assert rebuilt == self._keys.get(term, set()), (
                "LSM layers disagree with live keys for %r: %d rebuilt vs"
                " %d live" % (term, len(rebuilt), len(self._keys.get(term, ())))
            )
        assert self._mem_entries == sum(len(m) for m in self._mem.values())


def encoded_size_of(plist):
    """Encoded byte size of a posting list (codec-accurate log charge)."""
    from repro.postings.encoder import encoded_size

    return encoded_size(plist)
