"""A paged B+-tree over byte-string keys.

This is the BerkeleyDB replacement of Section 3: the per-peer ``Term``
relation is stored as a clustered index with the term as search key and
postings in ``(p, d, sid)`` order (see
:class:`repro.storage.clustered.ClusteredIndexStore`, which builds composite
keys on top of this tree).

The tree is a textbook B+-tree: inner nodes hold separator keys and child
pointers, leaves hold key/value pairs and are chained for range scans.
"Paged" refers to the I/O accounting: every node visit is charged one page
read and every node modification one page write against
:class:`~repro.storage.api.StoreStats`-style counters, so lookups and
appends cost O(log n) simulated I/O — the linear-publishing behaviour the
paper reports.
"""

import bisect

PAGE_SIZE = 4096


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self):
        self.keys = []
        self.values = []
        self.next = None


class _Inner:
    __slots__ = ("keys", "children")

    def __init__(self):
        self.keys = []
        self.children = []


class BPlusTree:
    """B+-tree mapping bytes keys to arbitrary values.

    ``order`` is the maximum number of keys per node; nodes split when they
    exceed it.  Deletion removes entries from leaves without rebalancing
    (underfull leaves are tolerated), which keeps the implementation simple
    and is harmless for the index workloads here, where deletes are rare —
    the paper itself treats document modification as delete + reinsert.
    """

    def __init__(self, order=64, page_size=PAGE_SIZE):
        if order < 4:
            raise ValueError("order must be >= 4, got %d" % order)
        self.order = order
        self.page_size = page_size
        self._root = _Leaf()
        self._size = 0
        self.pages_read = 0
        self.pages_written = 0
        self._dirty = None  # batch mode: set of touched node ids

    def __len__(self):
        return self._size

    def _mark_dirty(self, node):
        """Charge one page write, or record the page in batch mode.

        Real stores (BerkeleyDB included) write a dirty page once per
        flush no matter how many records in a batch touched it; the batch
        mode of :meth:`insert_many` reproduces that, which is what makes
        bulk appends cost O(pages touched), not O(records)."""
        if self._dirty is None:
            self.pages_written += 1
        else:
            self._dirty.add(id(node))

    def insert_many(self, pairs):
        """Bulk insert; dirty pages are charged once for the whole batch.
        Returns the number of new keys."""
        if self._dirty is not None:
            raise RuntimeError("insert_many cannot nest")
        self._dirty = set()
        added = 0
        try:
            for key, value in pairs:
                if self.insert(key, value):
                    added += 1
        finally:
            # each dirty page is read-modified-written once per batch
            self.pages_read += len(self._dirty)
            self.pages_written += len(self._dirty)
            self._dirty = None
        return added

    @property
    def bytes_read(self):
        return self.pages_read * self.page_size

    @property
    def bytes_written(self):
        return self.pages_written * self.page_size

    # -- lookup ------------------------------------------------------------

    def _find_leaf(self, key):
        """Descend to the leaf that would contain ``key``; charge reads."""
        node = self._root
        self.pages_read += 1
        while isinstance(node, _Inner):
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
            self.pages_read += 1
        return node

    def get(self, key, default=None):
        leaf = self._find_leaf(key)
        i = bisect.bisect_left(leaf.keys, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            return leaf.values[i]
        return default

    def __contains__(self, key):
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    # -- insertion ---------------------------------------------------------

    def insert(self, key, value):
        """Insert or overwrite ``key``; returns True if the key was new."""
        result = self._insert(self._root, key, value)
        if result is None:
            return self._last_insert_was_new
        sep, right = result
        new_root = _Inner()
        new_root.keys = [sep]
        new_root.children = [self._root, right]
        self._root = new_root
        self._mark_dirty(new_root)
        return self._last_insert_was_new

    def _insert(self, node, key, value):
        if isinstance(node, _Leaf):
            i = bisect.bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                node.values[i] = value
                self._last_insert_was_new = False
            else:
                node.keys.insert(i, key)
                node.values.insert(i, value)
                self._size += 1
                self._last_insert_was_new = True
            self._mark_dirty(node)
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None

        idx = bisect.bisect_right(node.keys, key)
        result = self._insert(node.children[idx], key, value)
        if result is None:
            return None
        sep, right = result
        node.keys.insert(idx, sep)
        node.children.insert(idx + 1, right)
        self._mark_dirty(node)
        if len(node.keys) > self.order:
            return self._split_inner(node)
        return None

    def _split_leaf(self, leaf):
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        right.next = leaf.next
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        leaf.next = right
        self._mark_dirty(leaf)
        self._mark_dirty(right)
        return right.keys[0], right

    def _split_inner(self, node):
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Inner()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        self._mark_dirty(node)
        self._mark_dirty(right)
        return sep, right

    # -- deletion ----------------------------------------------------------

    def delete(self, key):
        """Remove ``key``; returns True if it existed."""
        leaf = self._find_leaf(key)
        i = bisect.bisect_left(leaf.keys, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            del leaf.keys[i]
            del leaf.values[i]
            self._size -= 1
            self._mark_dirty(leaf)
            return True
        return False

    # -- scans ---------------------------------------------------------------

    def scan(self, lo=None, hi=None):
        """Yield ``(key, value)`` pairs with ``lo <= key < hi`` in order.

        ``lo`` None scans from the smallest key; ``hi`` None to the end.
        """
        if lo is None:
            node = self._root
            self.pages_read += 1
            while isinstance(node, _Inner):
                node = node.children[0]
                self.pages_read += 1
            leaf, i = node, 0
        else:
            leaf = self._find_leaf(lo)
            i = bisect.bisect_left(leaf.keys, lo)
        while leaf is not None:
            while i < len(leaf.keys):
                key = leaf.keys[i]
                if hi is not None and key >= hi:
                    return
                yield key, leaf.values[i]
                i += 1
            leaf = leaf.next
            if leaf is not None:
                self.pages_read += 1
            i = 0

    def scan_prefix(self, prefix):
        """Yield ``(key, value)`` for all keys starting with ``prefix``."""
        hi = _prefix_upper_bound(prefix)
        return self.scan(lo=prefix, hi=hi)

    def keys(self):
        return (k for k, _ in self.scan())

    # -- invariants (used by tests) -----------------------------------------

    def check_invariants(self):
        """Verify ordering, separator, and leaf-chain invariants."""
        leaves = []
        self._check_node(self._root, None, None, leaves, is_root=True)
        # leaf chain must enumerate exactly the in-order leaves
        node = self._root
        while isinstance(node, _Inner):
            node = node.children[0]
        chained = []
        while node is not None:
            chained.append(node)
            node = node.next
        assert chained == leaves, "leaf chain disagrees with tree order"
        flat = [k for leaf in leaves for k in leaf.keys]
        assert flat == sorted(flat), "keys out of order"
        assert len(set(flat)) == len(flat), "duplicate keys"
        assert len(flat) == self._size, "size counter drift"

    def _check_node(self, node, lo, hi, leaves, is_root=False):
        if isinstance(node, _Leaf):
            for k in node.keys:
                assert lo is None or k >= lo, "leaf key below separator"
                assert hi is None or k < hi, "leaf key above separator"
            leaves.append(node)
            return
        assert node.keys == sorted(node.keys), "inner keys out of order"
        assert len(node.children) == len(node.keys) + 1
        if not is_root:
            assert node.keys, "non-root inner node with no keys"
        bounds = [lo] + list(node.keys) + [hi]
        for child, (clo, chi) in zip(node.children, zip(bounds, bounds[1:])):
            self._check_node(child, clo, chi, leaves)


def _prefix_upper_bound(prefix):
    """Smallest byte string greater than every string with ``prefix``."""
    buf = bytearray(prefix)
    while buf:
        if buf[-1] != 0xFF:
            buf[-1] += 1
            return bytes(buf)
        buf.pop()
    return None  # prefix was all 0xFF: scan to the end
