"""The local store interface and its I/O accounting.

A store maps string *terms* to ordered posting lists.  Implementations
track their (simulated) disk I/O in a :class:`StoreStats` so the publishing
and query cost models can charge realistic times: the naive store's
read-modify-write pattern shows up directly as quadratic ``bytes_read``.
"""

import abc


class StoreStats:
    """Cumulative I/O counters for one store instance."""

    __slots__ = ("bytes_read", "bytes_written", "num_ops")

    def __init__(self):
        self.bytes_read = 0
        self.bytes_written = 0
        self.num_ops = 0

    def snapshot(self):
        return (self.bytes_read, self.bytes_written, self.num_ops)

    def delta_since(self, snap):
        return StoreStatsDelta(
            self.bytes_read - snap[0],
            self.bytes_written - snap[1],
            self.num_ops - snap[2],
        )

    def __repr__(self):
        return "StoreStats(read=%d, written=%d, ops=%d)" % (
            self.bytes_read,
            self.bytes_written,
            self.num_ops,
        )


class StoreStatsDelta:
    """Difference between two :class:`StoreStats` snapshots."""

    __slots__ = ("bytes_read", "bytes_written", "num_ops")

    def __init__(self, bytes_read, bytes_written, num_ops):
        self.bytes_read = bytes_read
        self.bytes_written = bytes_written
        self.num_ops = num_ops

    def cost_seconds(self, cost_model):
        """Convert this I/O delta to simulated seconds."""
        return (
            cost_model.disk_read_time(self.bytes_read)
            + cost_model.disk_write_time(self.bytes_written)
            + cost_model.store_op_time(self.num_ops)
        )


class Store(abc.ABC):
    """Abstract term → posting-list store."""

    def __init__(self):
        self.stats = StoreStats()

    @abc.abstractmethod
    def put(self, term, postings):
        """Replace the full posting list of ``term`` (old DHT semantics:
        read existing value, reconcile with ``postings``, write back)."""

    @abc.abstractmethod
    def append(self, term, postings):
        """Add ``postings`` to ``term`` without reading the existing list
        (the paper's DHT API extension)."""

    @abc.abstractmethod
    def get(self, term):
        """Return the :class:`~repro.postings.PostingList` of ``term``
        (empty list if absent)."""

    @abc.abstractmethod
    def delete(self, term, posting=None):
        """Remove one posting of ``term``, or the whole term if ``posting``
        is None.  Returns True if something was removed."""

    @abc.abstractmethod
    def terms(self):
        """Iterate the stored terms in lexicographic order."""

    @abc.abstractmethod
    def count(self, term):
        """Number of postings stored for ``term`` (0 if absent)."""

    def __contains__(self, term):
        return self.count(term) > 0
