"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro list                     # available experiments
    python -m repro run table1 fig7          # run selected experiments
    python -m repro run --all --json         # run everything, JSON output
    python -m repro demo                     # tiny end-to-end demo
    python -m repro trace demo               # Perfetto trace of demo queries
    python -m repro trace "//article//author" -o q.json
    python -m repro profile views            # top spans + utilization
    python -m repro stats --json             # machine-readable load stats
    python -m repro top                      # telemetry view of a serve run
    python -m repro top --html report.html   # self-contained HTML report
    python -m repro explain "//article//author"   # per-query EXPLAIN ANALYZE
    python -m repro run serve skew --telemetry    # experiments + diagnostics
    python -m repro fuzz --iterations 200    # fault-injection fuzzing
    python -m repro fuzz --seed 5076 --iterations 1 --write-quorum majority

Each experiment prints the paper-style rows and verifies its qualitative
shape (the same checks the benchmark suite asserts).  ``trace`` writes
Chrome trace-event JSON openable in Perfetto or ``chrome://tracing``;
``profile`` prints where the simulated time went.
"""

import argparse
import json
import sys
import time


def _registry():
    """Name -> (runner, formatter, checker, description).  Runners are
    thunks at the default benchmark scales."""
    from repro.experiments import (
        block_pruning,
        dpp_order_ablation,
        fault_tolerance,
        optimizer_eval,
        fig2_indexing,
        fig3_query,
        fig7_reducers,
        fig9_fundex,
        filter_sensitivity,
        ingest,
        pipeline_ablation,
        posting_skew,
        serving,
        skew_balance,
        store_ablation,
        table1_dyadic,
        traffic,
        view_warmup,
    )

    return {
        "fig2": (
            lambda: fig2_indexing.run(scale=0.0005, peer_scale=0.1),
            fig2_indexing.format_rows,
            fig2_indexing.check_shape,
            "Figure 2: indexing time vs. published volume",
        ),
        "fig3": (
            lambda: fig3_query.run(scale=0.001, num_peers=30),
            fig3_query.format_rows,
            fig3_query.check_shape,
            "Figure 3: query response time with/without DPP",
        ),
        "traffic": (
            lambda: traffic.run(scale=0.0003, num_peers=20, num_queries=50),
            traffic.format_rows,
            traffic.check_shape,
            "Section 4.3: traffic of the 50-query workload",
        ),
        "postskew": (
            lambda: posting_skew.run(sample_bytes=400_000),
            posting_skew.format_rows,
            posting_skew.check_shape,
            "Section 4.3: posting-list skew",
        ),
        "skew": (
            skew_balance.run,
            skew_balance.format_rows,
            skew_balance.check_shape,
            "Load balancing: skewed-serving ablation (redistribution on/off)",
        ),
        "table1": (
            lambda: table1_dyadic.run(scale=0.02),
            table1_dyadic.format_rows,
            None,
            "Table 1: average dyadic cover size",
        ),
        "sensitivity": (
            lambda: filter_sensitivity.run(docs=20),
            filter_sensitivity.format_rows,
            filter_sensitivity.check_shape,
            "Section 5.4: filter sensitivity analysis",
        ),
        "fig7": (
            lambda: fig7_reducers.run(num_peers=16, docs=30, doc_bytes=15_000),
            fig7_reducers.format_rows,
            fig7_reducers.check_shape,
            "Figure 7: Bloom reducer data volumes",
        ),
        "fig9": (
            lambda: fig9_fundex.run(scale=0.005, num_peers=8, matches=4),
            fig9_fundex.format_rows,
            fig9_fundex.check_shape,
            "Figure 9: Fundex query times",
        ),
        "store": (
            lambda: store_ablation.run(list_sizes=(5_000, 20_000, 80_000)),
            store_ablation.format_rows,
            store_ablation.check_shape,
            "Section 3 ablation: PAST store vs. B+-tree vs. LSM",
        ),
        "ingest": (
            ingest.run,
            ingest.format_rows,
            ingest.check_shape,
            "Write-path ablation: batched vs doc-at-a-time publishing",
        ),
        "pipeline": (
            lambda: pipeline_ablation.run(docs=30, num_peers=12),
            pipeline_ablation.format_rows,
            lambda r: pipeline_ablation.check_shape(r, min_ttfa_gain=2.0),
            "Section 3 ablation: blocking vs. pipelined get",
        ),
        "dpporder": (
            dpp_order_ablation.run,
            dpp_order_ablation.format_rows,
            dpp_order_ablation.check_shape,
            "Section 4.1 ablation: ordered vs. random splits",
        ),
        "blocks": (
            block_pruning.run,
            block_pruning.format_rows,
            block_pruning.check_shape,
            "Section 4.2 ablation: eager vs window vs zone-map-lazy fetches",
        ),
        "optimizer": (
            optimizer_eval.run,
            optimizer_eval.format_rows,
            optimizer_eval.check_shape,
            "Strategy optimizer vs. fixed strategies",
        ),
        "views": (
            view_warmup.run,
            view_warmup.format_rows,
            view_warmup.check_shape,
            "Materialized views: repeated-query warmup crossover",
        ),
        "faults": (
            fault_tolerance.run,
            fault_tolerance.format_rows,
            fault_tolerance.check_shape,
            "Section 4.2 ablation: completeness/latency vs. crash rate",
        ),
        "serve": (
            serving.run,
            serving.format_rows,
            serving.check_shape,
            "Concurrent serving: saturation sweep with coalescing/admission",
        ),
    }


def cmd_list(_args):
    registry = _registry()
    width = max(len(name) for name in registry)
    for name, (_, _, _, description) in registry.items():
        print("%-*s  %s" % (width, name, description))
    return 0


def _chart_for(name, result):
    from repro.experiments import charts

    renderers = {
        "fig2": charts.chart_fig2,
        "fig3": charts.chart_fig3,
        "fig9": charts.chart_fig9,
        "traffic": charts.chart_traffic,
    }
    renderer = renderers.get(name)
    return renderer(result) if renderer else None


def _jsonable(value):
    """Best-effort conversion of experiment results to JSON-safe values."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def cmd_run(args):
    registry = _registry()
    names = list(registry) if args.all else args.experiments
    unknown = [n for n in names if n not in registry]
    if unknown:
        print("unknown experiments: %s" % ", ".join(unknown), file=sys.stderr)
        return 2
    if not names:
        print("nothing to run; use --all or name experiments", file=sys.stderr)
        return 2
    as_json = getattr(args, "json", False)
    telemetry = getattr(args, "telemetry", False)
    failed = []
    records = []
    for name in names:
        runner, formatter, checker, description = registry[name]
        if not as_json:
            print("== %s ==" % description)
        started = time.time()
        if telemetry and name in _TELEMETRY_EXPERIMENTS:
            result = runner(telemetry=True)
        else:
            if telemetry and name not in _TELEMETRY_EXPERIMENTS:
                print(
                    "note: %s does not support --telemetry; running plain"
                    % name,
                    file=sys.stderr,
                )
            result = runner()
        shape_ok = None
        shape_error = None
        if checker is not None:
            try:
                checker(result)
                shape_ok = True
            except AssertionError as exc:
                failed.append(name)
                shape_ok = False
                shape_error = str(exc)
        seconds = time.time() - started
        if as_json:
            records.append(
                {
                    "experiment": name,
                    "description": description,
                    "result": _jsonable(result),
                    "shape_ok": shape_ok,
                    "shape_error": shape_error,
                    "seconds": seconds,
                }
            )
            continue
        print(formatter(result))
        if getattr(args, "chart", False):
            chart = _chart_for(name, result)
            if chart:
                print(chart)
        if shape_ok is True:
            print("shape: OK")
        elif shape_ok is False:
            print("shape: FAILED (%s)" % shape_error)
        print("(%.1fs)\n" % seconds)
    if as_json:
        print(json.dumps(records, indent=2, sort_keys=True))
    if failed:
        print("failed shapes: %s" % ", ".join(failed), file=sys.stderr)
        return 1
    return 0


def _demo_system():
    """The small shared corpus behind ``stats``/``trace``/``profile``."""
    from repro.kadop.config import KadopConfig
    from repro.kadop.system import KadopNetwork
    from repro.workloads.dblp import DblpGenerator

    config = KadopConfig(
        replication=1, use_views=True, view_auto_materialize_after=2
    )
    net = KadopNetwork.create(num_peers=12, config=config)
    gen = DblpGenerator(seed=1, target_doc_bytes=8_000)
    for i, doc in enumerate(gen.documents(10)):
        net.peers[i % 6].publish(doc, uri="d:%d" % i)
    return net


def _demo_queries(net):
    """The demo query mix: a hot repeated query (crosses the view
    materialization threshold, so traces show consult/serve spans) plus a
    keyword query for a plain multi-term index phase."""
    for i in range(4):
        net.query("//article//author", peer=net.peers[i % 12])
    net.query(
        '//article[. contains "the"]//title',
        keyword_steps=("the",),
        peer=net.peers[5],
    )


def cmd_stats(args):
    """Publish a small corpus, run a repeated query, print load stats."""
    from repro.kadop.stats import network_stats

    net = _demo_system()
    # a hot query: the repeats cross the threshold, materialize a view, and
    # the remaining runs hit it — so the view counters below are non-zero
    for i in range(4):
        net.query("//article//author", peer=net.peers[i % 12])
    stats = network_stats(net)
    if getattr(args, "json", False):
        from repro.obs import MetricsRegistry, STATS_SCHEMA_VERSION

        registry = MetricsRegistry()
        stats.to_registry(registry)
        payload = {
            "schema_version": STATS_SCHEMA_VERSION,
            "network": stats.to_dict(),
            "metrics": registry.snapshot(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(stats.format())
    return 0


def cmd_top(args):
    """Serve a skewed open-loop stream with telemetry on; render it."""
    from repro.experiments import skew_balance
    from repro.obs import render_top, write_html, write_json
    from repro.obs.slo import diagnose
    from repro.workloads.profiles import open_loop_workload, skewed_profile

    net = skew_balance._network(args.peers, args.docs, args.seed, {})
    profile = skewed_profile(args.skew, num_queries=args.queries)
    arrivals = open_loop_workload(
        profile, args.rate, seed=args.seed, num_sources=3
    )
    sampler = net.enable_telemetry(
        interval_s=args.interval, slo_objective_s=args.slo
    )
    net.serve(arrivals, policy="fifo", coalesce=False)
    findings = diagnose(
        sampler, sampler.slo, ledger=net.balance.ledger
    )
    payload = sampler.to_dict()
    payload["findings"] = [f.to_dict() for f in findings]
    if args.out:
        write_json(payload, args.out)
        print("wrote %s" % args.out, file=sys.stderr)
    if args.html:
        write_html(payload, args.html, findings=findings)
        print("wrote %s" % args.html, file=sys.stderr)
    if getattr(args, "json", False):
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif not (args.out or args.html):
        print(render_top(payload, findings=findings))
    return 0


def cmd_explain(args):
    """EXPLAIN ANALYZE one query against the demo corpus."""
    from repro.obs.explain import explain_query

    net = _demo_system()
    if args.warm:
        # repeats cross the view threshold, so the explained run can show
        # a view:serve phase instead of a plain index phase
        for i in range(args.warm):
            net.query(args.query, peer=net.peers[i % len(net.peers)])
    _answers, explain = explain_query(
        net,
        args.query,
        keyword_steps=tuple(args.keyword or ()),
        peer=net.peers[args.peer % len(net.peers)],
    )
    if getattr(args, "json", False):
        print(json.dumps(explain.to_dict(), indent=2, sort_keys=True))
    else:
        print(explain.format(max_rows=args.rows))
    # a report that does not reconcile is a bug worth a red exit code
    return 0 if explain.reconcile()["ok"] else 1


#: experiments whose run() takes a ``telemetry=`` kwarg (repro run --telemetry)
_TELEMETRY_EXPERIMENTS = ("serve", "skew")

#: experiments that accept an (optionally shared) tracer/metrics pair
_TRACEABLE_EXPERIMENTS = ("views", "traffic")


def _traced_run(target):
    """Run ``target`` with tracing on; returns ``(tracer, metrics)``.

    ``target`` is ``"demo"`` (the shared demo corpus and query mix), an
    XPath query string (run once against the demo corpus), or one of the
    traced experiments (%s).
    """ % (", ".join(_TRACEABLE_EXPERIMENTS),)
    from repro.obs import MetricsRegistry, Tracer

    tracer = Tracer()
    metrics = MetricsRegistry()
    if target == "views":
        from repro.experiments import view_warmup

        view_warmup.run(tracer=tracer, metrics=metrics)
        return tracer, metrics
    if target == "traffic":
        from repro.experiments import traffic

        # the `repro run traffic` scale, so tracing stays interactive
        traffic.run(
            scale=0.0003, num_peers=20, num_queries=50, tracer=tracer,
            metrics=metrics,
        )
        return tracer, metrics
    net = _demo_system()
    net.enable_tracing(tracer, metrics)
    if target == "demo":
        _demo_queries(net)
    else:
        net.query(target, peer=net.peers[0])
    return tracer, metrics


def cmd_trace(args):
    """Record a Perfetto-compatible trace of a query or experiment."""
    from repro.obs import validate_trace_file, write_chrome_trace

    tracer, _metrics = _traced_run(args.target)
    events = write_chrome_trace(tracer, args.out)
    validate_trace_file(args.out)  # what CI asserts, asserted here too
    print(
        "wrote %s: %d events (%d queries, %d spans); open in Perfetto or "
        "chrome://tracing" % (args.out, events, tracer.queries, len(tracer.spans))
    )
    return 0


def cmd_profile(args):
    """Print top spans by simulated self-time and resource utilization."""
    from repro.obs import format_profile

    tracer, metrics = _traced_run(args.target)
    print(format_profile(tracer, metrics, top=args.top))
    return 0


def cmd_fuzz(args):
    """Run the seed-reproducible scenario fuzzer (repro.sim.fuzz)."""
    from repro.sim.fuzz import FuzzConfig, FuzzFailure, run_fuzz

    config = FuzzConfig(
        iterations=args.iterations,
        steps=args.steps,
        num_peers=args.peers,
        replication=args.replication,
        crash_rate=args.crash_rate,
        drop_rate=args.drop_rate,
        delay_rate=args.delay_rate,
        duplicate_rate=args.duplicate_rate,
        overlay=args.overlay,
        write_quorum=args.write_quorum,
        serve_weight=args.serve_weight,
        hot_read_weight=args.hot_read_weight,
        rebalance_weight=args.rebalance_weight,
        store_backend=args.store_backend,
        bulk_publish_weight=args.bulk_publish_weight,
        unpublish_weight=args.unpublish_weight,
        compact_weight=args.compact_weight,
    )
    progress = None
    if not getattr(args, "json", False):
        def progress(seed, result):
            if result.iterations % 50 == 0:
                print(
                    "  ...%d iteration(s) done (last seed %d)"
                    % (result.iterations, seed)
                )
    started = time.time()
    try:
        result = run_fuzz(seed=args.seed, config=config, progress=progress)
    except FuzzFailure as failure:
        # the one-line repro lands in CI job output via stderr
        print(str(failure), file=sys.stderr)
        return 1
    seconds = time.time() - started
    if getattr(args, "json", False):
        payload = result.to_dict()
        payload["seconds"] = seconds
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        "fuzz: %d iteration(s) x %d steps passed in %.1fs "
        "(seeds %d..%d, %d queries checked)"
        % (
            result.iterations,
            config.steps,
            seconds,
            args.seed,
            args.seed + config.iterations - 1,
            result.queries_checked,
        )
    )
    print(
        "  actions: %s"
        % ", ".join("%s=%d" % kv for kv in sorted(result.actions.items()))
    )
    print(
        "  faults:  %s"
        % ", ".join("%s=%d" % kv for kv in sorted(result.faults.items()))
    )
    return 0


def cmd_demo(_args):
    from repro.kadop.config import KadopConfig
    from repro.kadop.system import KadopNetwork

    net = KadopNetwork.create(num_peers=6, config=KadopConfig(replication=2))
    net.peers[0].publish(
        "<bib><article><title>XML in DHTs</title>"
        "<author>Abiteboul</author></article></bib>",
        uri="demo:1",
    )
    answers, report = net.query_with_report("//article//author")
    print("published 1 document on a 6-peer ring")
    print("query //article//author -> %d answer(s)" % len(answers))
    print(
        "simulated response %.1f ms, %d bytes on the wire"
        % (report.response_time_s * 1e3, report.total_bytes)
    )
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'XML processing in DHT networks' (ICDE 2008)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments").set_defaults(
        func=cmd_list
    )
    run_parser = sub.add_parser("run", help="run experiments")
    run_parser.add_argument("experiments", nargs="*", help="experiment names")
    run_parser.add_argument("--all", action="store_true", help="run everything")
    run_parser.add_argument(
        "--chart", action="store_true", help="render figures as ASCII charts"
    )
    run_parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable JSON results instead of formatted rows",
    )
    run_parser.add_argument(
        "--telemetry",
        action="store_true",
        help="attach the telemetry sampler + SLO diagnostics to the "
        "serving experiments (%s)" % ", ".join(_TELEMETRY_EXPERIMENTS),
    )
    run_parser.set_defaults(func=cmd_run)
    sub.add_parser("demo", help="tiny end-to-end demo").set_defaults(func=cmd_demo)
    stats_parser = sub.add_parser(
        "stats", help="index load-balance statistics on a demo corpus"
    )
    stats_parser.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    stats_parser.set_defaults(func=cmd_stats)
    top_parser = sub.add_parser(
        "top",
        help="serving-clock telemetry of a skewed serve run: series, "
        "SLO burn, diagnostics",
    )
    top_parser.add_argument("--peers", type=int, default=10)
    top_parser.add_argument("--docs", type=int, default=12)
    top_parser.add_argument("--seed", type=int, default=0)
    top_parser.add_argument(
        "--skew", type=float, default=1.4, help="Zipf exponent of the query mix"
    )
    top_parser.add_argument(
        "--rate", type=float, default=24.0, help="arrival rate (queries/s sim)"
    )
    top_parser.add_argument("--queries", type=int, default=48)
    top_parser.add_argument(
        "--slo", type=float, default=0.8, help="latency objective (simulated s)"
    )
    top_parser.add_argument(
        "--interval", type=float, default=0.1, help="sampling interval (sim s)"
    )
    top_parser.add_argument(
        "--json", action="store_true", help="print the telemetry JSON payload"
    )
    top_parser.add_argument(
        "-o", "--out", help="write the telemetry JSON payload to this file"
    )
    top_parser.add_argument(
        "--html", help="write a self-contained HTML report to this file"
    )
    top_parser.set_defaults(func=cmd_top)
    explain_parser = sub.add_parser(
        "explain",
        help="EXPLAIN ANALYZE one query: simulated time by phase, wire "
        "bytes by category/peer/key, reconciled against the meter",
    )
    explain_parser.add_argument("query", help="XPath query text")
    explain_parser.add_argument(
        "--keyword", action="append",
        help="keyword step for contains-queries (repeatable)",
    )
    explain_parser.add_argument(
        "--peer", type=int, default=0, help="originating peer index"
    )
    explain_parser.add_argument(
        "--warm", type=int, default=0,
        help="run the query this many times first (crosses the view "
        "materialization threshold at 2+)",
    )
    explain_parser.add_argument(
        "--rows", type=int, default=8, help="per-category attribution rows"
    )
    explain_parser.add_argument(
        "--json", action="store_true", help="machine-readable JSON report"
    )
    explain_parser.set_defaults(func=cmd_explain)
    trace_parser = sub.add_parser(
        "trace",
        help="record a Perfetto-compatible trace (demo, a query, or an "
        "experiment: %s)" % ", ".join(_TRACEABLE_EXPERIMENTS),
    )
    trace_parser.add_argument(
        "target", nargs="?", default="demo", help="demo | <xpath query> | %s"
        % " | ".join(_TRACEABLE_EXPERIMENTS),
    )
    trace_parser.add_argument(
        "-o", "--out", default="trace.json", help="output path (trace.json)"
    )
    trace_parser.set_defaults(func=cmd_trace)
    profile_parser = sub.add_parser(
        "profile", help="top spans by simulated self-time + resource utilization"
    )
    profile_parser.add_argument(
        "target", nargs="?", default="demo", help="demo | <xpath query> | %s"
        % " | ".join(_TRACEABLE_EXPERIMENTS),
    )
    profile_parser.add_argument(
        "--top", type=int, default=12, help="rows in the top-span table"
    )
    profile_parser.set_defaults(func=cmd_profile)
    fuzz_parser = sub.add_parser(
        "fuzz",
        help="seed-reproducible scenario fuzzer for the fault layer",
    )
    fuzz_parser.add_argument("--seed", type=int, default=0)
    fuzz_parser.add_argument(
        "--iterations", type=int, default=20,
        help="independent scenarios; seeds are seed..seed+iterations-1",
    )
    fuzz_parser.add_argument(
        "--steps", type=int, default=12, help="random actions per scenario"
    )
    fuzz_parser.add_argument("--peers", type=int, default=8)
    fuzz_parser.add_argument("--replication", type=int, default=3)
    fuzz_parser.add_argument("--crash-rate", type=float, default=0.05)
    fuzz_parser.add_argument("--drop-rate", type=float, default=0.02)
    fuzz_parser.add_argument("--delay-rate", type=float, default=0.02)
    fuzz_parser.add_argument("--duplicate-rate", type=float, default=0.02)
    fuzz_parser.add_argument(
        "--overlay", choices=("pastry", "chord"), default="pastry"
    )
    fuzz_parser.add_argument(
        "--write-quorum", choices=("all", "majority"), default="all"
    )
    fuzz_parser.add_argument(
        "--serve-weight", type=int, default=1,
        help="weight of the concurrent-serving burst step (0 disables it"
        " and reproduces pre-serving campaigns exactly)",
    )
    fuzz_parser.add_argument(
        "--hot-read-weight", type=int, default=1,
        help="weight of the hot-read burst step (0 disables balancing"
        " steps and reproduces pre-balance campaigns exactly)",
    )
    fuzz_parser.add_argument(
        "--rebalance-weight", type=int, default=1,
        help="weight of the balance-tick step (decay + demotion + one"
        " rebalancer migration pass; 0 disables)",
    )
    fuzz_parser.add_argument(
        "--store-backend", choices=("btree", "naive", "lsm"), default="btree",
        help="per-peer storage backend the fuzzed networks use (no rng"
        " draw, so LSM sweeps replay btree corpus seeds exactly)",
    )
    fuzz_parser.add_argument(
        "--bulk-publish-weight", type=int, default=1,
        help="weight of the batched-publish burst step (0 disables the"
        " write-path steps' views draw and reproduces earlier campaigns)",
    )
    fuzz_parser.add_argument(
        "--unpublish-weight", type=int, default=1,
        help="weight of the document-withdrawal step (checks view"
        " freshness after the delta; 0 disables)",
    )
    fuzz_parser.add_argument(
        "--compact-weight", type=int, default=1,
        help="weight of the LSM flush+fold step (checks store invariants"
        " and content stability across compaction; 0 disables)",
    )
    fuzz_parser.add_argument(
        "--json", action="store_true", help="machine-readable JSON summary"
    )
    fuzz_parser.set_defaults(func=cmd_fuzz)
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
