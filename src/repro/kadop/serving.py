"""Concurrent multi-query serving on one shared scheduler timeline.

Single-query execution (:mod:`repro.kadop.execution`) gives every query an
idle network: its transfer schedule competes only with itself.  This
module serves an *open-loop stream* of queries — each arrives at a fixed
simulated instant, independent of when earlier queries finish — against
one shared :class:`~repro.sim.tasks.Scheduler`, so overlapping queries
genuinely contend for per-peer egress links, the source peer's ingress
capacity, and its join CPU.

The engine keeps the paper's answer semantics exactly: each admitted
query's *data path* runs through the unchanged executor (so answers, and
the per-query byte accounting, are identical to running the query alone),
while the executor's private transfer schedules are captured and
*replayed* onto the shared timeline with ``release = admission instant``.
A query's served latency is then arrival → the finish of its last task on
the shared schedule: queue wait + contention-stretched fetches + join +
document phase.

Three independently switchable mechanisms ride on top:

**Single-flight coalescing** (:class:`FetchCoalescer`): when a query
demands a term key / DPP root / DPP block / view whose fetch another
in-flight query already started, it joins that flight — same data, one
fanned-out receipt, zero additional simulated bytes — and its shared-
timeline join depends on the *producer's* transfer tasks instead of
duplicating them.  Strictly single-flight, not a cache: a flight whose
transfer has completed before the waiter was admitted is expired, and the
waiter fetches for real.

**Admission control**: at most ``max_inflight`` queries execute
concurrently; excess arrivals wait in a bounded admission queue drained
FIFO or fair-share-per-source-peer, so saturation degrades into queueing
delay instead of unbounded contention.

**Open-loop arrivals**: :func:`repro.workloads.profiles.open_loop_workload`
generates seeded Poisson arrival traces at a target rate; the
``experiments.serving`` sweep drives this engine across rates and reports
throughput and p50/p95/p99 latency from the span tracer.
"""

from dataclasses import dataclass, field

from repro.obs.metrics import quantile_exact
from repro.obs.trace import observe_schedule
from repro.sim.tasks import Scheduler

#: float-comparison slack for simulated instants
_EPS = 1e-9

#: "argument not given" sentinel (None is a meaningful max_inflight value)
_UNSET = object()


@dataclass(frozen=True)
class QueryArrival:
    """One open-loop arrival: a query plus the instant it shows up."""

    arrival_s: float
    query_text: object  # query string or a parsed TreePattern
    keyword_steps: tuple = ()
    src: int = 0  # source peer index


@dataclass
class ServedQuery:
    """One query's journey through the serving engine."""

    seq: int
    arrival_s: float
    admit_s: float
    src: int
    query_text: object
    keyword_steps: tuple
    answers: list = field(default_factory=list, repr=False)
    report: object = None
    finish_s: float = 0.0
    traffic: dict = field(default_factory=dict)
    coalesced_fetches: int = 0
    root_id: int = None  # tracer span id of the query root (if traced)
    tasks: list = field(default_factory=list, repr=False)

    @property
    def queue_wait_s(self):
        return self.admit_s - self.arrival_s

    @property
    def latency_s(self):
        return self.finish_s - self.arrival_s

    @property
    def service_s(self):
        return self.finish_s - self.admit_s


@dataclass
class ServingResult:
    """Everything one serving run produced."""

    queries: list
    max_inflight: object
    policy: str
    coalesce: bool
    traffic: dict = field(default_factory=dict)
    coalesced_hits: int = 0
    coalesced_bytes_saved: int = 0

    @property
    def total_bytes(self):
        return sum(self.traffic.values())

    @property
    def makespan_s(self):
        return max((q.finish_s for q in self.queries), default=0.0)

    @property
    def throughput_qps(self):
        if not self.queries:
            return 0.0
        span = self.makespan_s - min(q.arrival_s for q in self.queries)
        return len(self.queries) / span if span > 0 else float("inf")

    def latencies(self):
        return sorted(q.latency_s for q in self.queries)

    def percentile(self, p):
        """Nearest-rank latency percentile (p in [0, 100]).

        Delegates to the shared exact-sample quantile in ``obs.metrics``
        (same rank arithmetic, bit-identical to the formula this method
        used to inline, so the committed BENCH gate values stand)."""
        latencies = self.latencies()
        if not latencies:
            return 0.0
        return quantile_exact(latencies, p / 100.0)

    @property
    def mean_queue_wait_s(self):
        if not self.queries:
            return 0.0
        return sum(q.queue_wait_s for q in self.queries) / len(self.queries)

    def to_dict(self):
        return {
            "queries": len(self.queries),
            "max_inflight": self.max_inflight,
            "policy": self.policy,
            "coalesce": self.coalesce,
            "throughput_qps": self.throughput_qps,
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
            "mean_queue_wait_s": self.mean_queue_wait_s,
            "makespan_s": self.makespan_s,
            "total_bytes": self.total_bytes,
            "coalesced_hits": self.coalesced_hits,
            "coalesced_bytes_saved": self.coalesced_bytes_saved,
        }


class _Flight:
    """One in-flight fetch another query may join."""

    __slots__ = (
        "kind",
        "key",
        "data",
        "nbytes",
        "receipt_s",
        "owner_seq",
        "tasks",
        "finish_s",
        "waiters",
    )

    def __init__(self, kind, key, data, nbytes, receipt_s, owner_seq):
        self.kind = kind
        self.key = key
        self.data = data
        self.nbytes = nbytes
        self.receipt_s = receipt_s
        self.owner_seq = owner_seq
        self.tasks = []  # the flight's tasks on the shared timeline
        self.finish_s = None  # provisional completion; None until replayed
        self.waiters = 0


def _flight_matcher(flight):
    """Predicate over *unprefixed* executor task names owned by ``flight``.

    Plain/pipelined fetches schedule ``xfer:<key>`` (or ``xfer:<key>:<i>``
    when striped over replicas); DPP block fetches schedule
    ``blk:<key>:<seq>``.  Root and view flights have no transfer task of
    their own (roots ride the locate latency, view fetches run inside the
    view outcome's time), so they match nothing.
    """
    if flight.kind in ("get", "pget"):
        base = "xfer:%s" % (flight.key,)
        prefix = base + ":"
        return lambda name: name == base or name.startswith(prefix)
    if flight.kind == "dppblk":
        target = "blk:%s:%d" % (flight.key[0], flight.key[1])
        return lambda name: name == target
    return lambda name: False


class FetchCoalescer:
    """Single-flight registry of in-flight fetches, keyed ``(kind, key)``.

    Installed on the :class:`~repro.dht.network.DhtNetwork` only while a
    serving engine runs with coalescing on; ``get`` / ``pipelined_get``,
    :meth:`DppIndex.root` / :meth:`DppIndex.fetch_block`, and
    :meth:`ViewBlockStore.fetch_all` consult it.  A lookup hits only when
    the flight is still in the air at the asking query's admission instant
    (``finish_s`` is provisional, from the latest shared-schedule run) —
    completed flights are expired, which is what makes this single-flight
    coalescing rather than a result cache.
    """

    def __init__(self):
        self._flights = {}  # (kind, key) -> _Flight
        self._joined = {}  # query seq -> [flights it joined]
        self._registered = {}  # query seq -> [flights it started]
        self.owner_seq = None
        self.now = 0.0
        self.hits = 0
        self.bytes_saved = 0

    def begin_query(self, seq, now_s):
        """Point the registry at the query about to execute."""
        self.owner_seq = seq
        self.now = now_s

    def lookup(self, kind, key):
        """The joinable flight for ``(kind, key)``, or None."""
        flight = self._flights.get((kind, key))
        if flight is None:
            return None
        if flight.owner_seq == self.owner_seq:
            # a query never coalesces with itself: a repeat fetch inside
            # one query pays again, exactly as it does running alone
            return None
        if flight.finish_s is not None and flight.finish_s <= self.now + _EPS:
            # the shared fetch already landed before this query was
            # admitted: single-flight only — fetch for real (and the real
            # fetch re-registers a fresh flight)
            del self._flights[(kind, key)]
            return None
        self.hits += 1
        self.bytes_saved += flight.nbytes
        flight.waiters += 1
        self._joined.setdefault(self.owner_seq, []).append(flight)
        return flight

    def register(self, kind, key, data, nbytes, receipt_s):
        """Record a real fetch the current query just performed."""
        flight = _Flight(kind, key, data, nbytes, receipt_s, self.owner_seq)
        self._flights[(kind, key)] = flight
        self._registered.setdefault(self.owner_seq, []).append(flight)
        return flight

    def joined(self, seq):
        return self._joined.get(seq, [])

    def registered(self, seq):
        return self._registered.get(seq, [])

    def refresh_finishes(self):
        """Re-read provisional flight completions after a schedule run."""
        for flight in self._flights.values():
            if flight.tasks:
                flight.finish_s = max(t.finish for t in flight.tasks)


class ServingEngine:
    """Admits, executes, and schedules one open-loop query stream."""

    def __init__(self, system, max_inflight=_UNSET, policy=None, coalesce=None):
        config = system.config
        self.system = system
        self.max_inflight = (
            config.max_inflight if max_inflight is _UNSET else max_inflight
        )
        self.policy = policy if policy is not None else config.admission_policy
        self.coalesce = (
            coalesce if coalesce is not None else config.coalesce_fetches
        )
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1 or None")
        if self.policy not in ("fifo", "fair"):
            raise ValueError("admission policy must be 'fifo' or 'fair'")
        self._shared = None
        self._caps = None
        self._coalescer = None
        self._records = None
        self._queued = None
        self._admitted = 0
        self._dropped = 0

    # -- telemetry probes (read-only; see repro.obs.telemetry) ------------------

    def queue_depth(self):
        """Queries waiting in the admission queue right now."""
        return len(self._queued) if self._queued is not None else 0

    def admitted_count(self):
        """Cumulative queries admitted so far this run."""
        return self._admitted

    def dropped_count(self):
        """Cumulative admission drops (the queue is currently unbounded,
        so this stays 0 — sampled anyway so the series exists the day a
        bound lands)."""
        return self._dropped

    def coalescer_hits(self):
        """Cumulative single-flight coalescer hits so far this run."""
        return self._coalescer.hits if self._coalescer is not None else 0

    # -- the serving loop -------------------------------------------------------

    def run(self, arrivals):
        """Serve ``arrivals`` (QueryArrival or ``(arrival_s, text[, kw[,
        src]])`` tuples); returns a :class:`ServingResult`."""
        system = self.system
        ordered = sorted(
            (self._normalize(a) for a in arrivals),
            key=lambda a: a.arrival_s,
        )
        shared = Scheduler()
        if system.net.faults is not None:
            shared.install_faults(system.net.faults)
        self._shared = shared
        self._caps = {}
        self._records = []
        coalescer = FetchCoalescer() if self.coalesce else None
        self._coalescer = coalescer
        system.net.coalescer = coalescer
        telemetry = getattr(system, "telemetry", None)
        if telemetry is not None:
            # (re-)install the stock probe set now so rate baselines are
            # the run start, not whenever the sampler was constructed
            from repro.obs.telemetry import install_standard_probes

            install_standard_probes(telemetry, system, engine=self)
        meter_start = system.net.meter.snapshot()
        queued = []  # (seq, QueryArrival), arrival order
        self._queued = queued
        self._admitted = 0
        self._dropped = 0
        admitted_per_src = {}
        clock = 0.0
        i = 0
        try:
            while i < len(ordered) or queued:
                if not queued:
                    clock = max(clock, ordered[i].arrival_s)
                while i < len(ordered) and ordered[i].arrival_s <= clock + _EPS:
                    queued.append((i, ordered[i]))
                    i += 1
                if self.max_inflight is not None:
                    # wait for a slot: jump to the earliest provisional
                    # completion, pulling newly arrived queries into the
                    # admission queue as simulated time passes
                    while True:
                        inflight = [
                            r
                            for r in self._records
                            if r.finish_s > clock + _EPS
                        ]
                        if len(inflight) < self.max_inflight:
                            break
                        clock = min(r.finish_s for r in inflight)
                        while (
                            i < len(ordered)
                            and ordered[i].arrival_s <= clock + _EPS
                        ):
                            queued.append((i, ordered[i]))
                            i += 1
                if telemetry is not None:
                    # sample every interval boundary the serving clock
                    # crossed, before this admission mutates the queue —
                    # strictly read-only, like the rebalance tick below
                    telemetry.advance_to(clock)
                seq, arrival = self._pick(queued, admitted_per_src)
                balance = getattr(system, "balance", None)
                if balance is not None:
                    # advance the rebalance clock to the admission instant:
                    # rate decay, hot-copy demotion, and migration passes
                    # all happen on the same simulated timeline as serving
                    balance.maybe_tick(clock)
                for node in system.net.nodes:
                    # LSM stores fold runs on the same serving clock the
                    # balancer ticks on; other backends have no such hook.
                    # Compaction preserves logical content, so answers stay
                    # byte-identical — only store-time accounting moves
                    compact = getattr(node.store, "maybe_compact", None)
                    if compact is not None and node.alive:
                        compact(clock)
                self._process(seq, arrival, clock)
                self._admitted += 1
                admitted_per_src[arrival.src] = (
                    admitted_per_src.get(arrival.src, 0) + 1
                )
        finally:
            system.net.coalescer = None
        records = self._records
        self._finish_observation(records, shared)
        result = ServingResult(
            queries=records,
            max_inflight=self.max_inflight,
            policy=self.policy,
            coalesce=self.coalesce,
            traffic=system.net.meter.delta_since(meter_start),
            coalesced_hits=coalescer.hits if coalescer else 0,
            coalesced_bytes_saved=coalescer.bytes_saved if coalescer else 0,
        )
        if telemetry is not None:
            # closing samples at the makespan + the completion-fed series
            # (exact in-flight counts, SLO feed) from the *final* shared
            # schedule — per-query finishes are provisional until here
            telemetry.finish(result, tracer=system.tracer, scheduler=shared)
        self._shared = None
        self._caps = None
        self._coalescer = None
        self._records = None
        self._queued = None
        return result

    @staticmethod
    def _normalize(item):
        if isinstance(item, QueryArrival):
            return item
        if isinstance(item, (tuple, list)) and len(item) >= 2:
            return QueryArrival(
                float(item[0]),
                item[1],
                tuple(item[2]) if len(item) > 2 else (),
                int(item[3]) if len(item) > 3 else 0,
            )
        raise TypeError("not an arrival: %r" % (item,))

    def _pick(self, queued, admitted_per_src):
        """Pop the next query to admit, per the configured policy."""
        if self.policy == "fair":
            best = min(
                range(len(queued)),
                key=lambda j: (
                    admitted_per_src.get(queued[j][1].src, 0),
                    queued[j][1].arrival_s,
                    queued[j][0],
                ),
            )
            return queued.pop(best)
        return queued.pop(0)

    # -- per-query execution ----------------------------------------------------

    def _process(self, seq, arrival, admit_s):
        """Run one query's data path serially, replay it onto the shared
        timeline, and recompute every in-flight query's provisional finish."""
        system = self.system
        executor = system.executor
        tracer = system.tracer
        pattern = (
            arrival.query_text
            if hasattr(arrival.query_text, "root")
            else system.parse(arrival.query_text, arrival.keyword_steps)
        )
        src_peer = system.peers[arrival.src]
        if self._coalescer is not None:
            self._coalescer.begin_query(seq, admit_s)
        spans_before = 0
        if tracer is not None:
            tracer.seek(admit_s)
            spans_before = len(tracer.spans)
        meter_before = system.net.meter.snapshot()
        executor._capture = []
        executor._last_doc_peer_times = None
        try:
            answers, report = executor.run(pattern, src_peer)
        finally:
            captured = executor._capture or []
            executor._capture = None
        doc_peer_times = executor._last_doc_peer_times or []
        record = ServedQuery(
            seq=seq,
            arrival_s=arrival.arrival_s,
            admit_s=admit_s,
            src=arrival.src,
            query_text=arrival.query_text,
            keyword_steps=arrival.keyword_steps,
            answers=answers,
            report=report,
            traffic=system.net.meter.delta_since(meter_before),
            coalesced_fetches=(
                len(self._coalescer.joined(seq)) if self._coalescer else 0
            ),
        )
        if tracer is not None:
            for span in tracer.spans[spans_before:]:
                if span.cat == "query":
                    record.root_id = span.span_id
                    break
        record.tasks = self._replay(
            record, admit_s, captured, doc_peer_times, report
        )
        self._shared.run()
        for rec in self._records:
            rec.finish_s = self._shared.makespan_of(rec.tasks)
        record.finish_s = self._shared.makespan_of(record.tasks)
        if self._coalescer is not None:
            self._coalescer.refresh_finishes()
        self._records.append(record)
        return record

    def _declare(self, name, capacity):
        """Declare a shared resource, widening capacity but never
        narrowing it (different fetch paths size ingress differently)."""
        known = self._caps.get(name)
        if known is None or capacity > known:
            self._shared.add_resource(name, capacity)
            self._caps[name] = capacity

    def _replay(self, record, admit_s, captured, doc_peer_times, report):
        """Re-submit one query's captured transfer schedules onto the
        shared timeline; returns the query's shared tasks.

        Every transfer keeps its serial duration and per-schedule release
        offset, shifted to the admission instant; the query-peer ingress
        becomes ``ingress:<src>`` (shared across that peer's queries) and
        producer egress links keep their global names, which is where
        cross-query contention comes from.  Transfers a coalesced flight
        made unnecessary are dropped; the query's join instead *depends
        on* the producer's tasks.  A closing ``join`` task (on the source
        peer's CPU) carries the remainder of the serial index time, and
        per-peer document tasks (on the document peers' egress links)
        carry the document phase.

        Tasks carry their *within-query ordinal* as list-scheduling
        priority: at a contended resource, the query that has made the
        least progress goes first (ties by admission order).  That models
        a server interleaving all in-flight queries fairly — processor
        sharing — rather than granting strict admission-order priority at
        every link.  It is exactly the regime admission control protects
        against: unbounded overload drags *every* query toward the
        makespan, while a bounded in-flight set keeps completions flowing
        in admission order.  Within one query the ordinal order equals
        submission order, so an uncontended replay is schedule-identical
        to the serial private run.
        """
        shared = self._shared
        seq = record.seq
        prefix = "q%d:" % seq
        ingress_name = "ingress:%d" % record.src
        cpu_name = "cpu:%d" % record.src
        joined = self._coalescer.joined(seq) if self._coalescer else []
        drop_matchers = [_flight_matcher(f) for f in joined]
        extra_deps = []
        for flight in joined:
            extra_deps.extend(flight.tasks)
        created = []
        xfer_tasks = []
        xfer_span = 0.0
        ordinal = 0  # per-query progress rank, used as scheduling priority
        for sched, rel_extra in captured:
            caps = sched.capacities()
            span = max(
                (t.finish for t in sched.tasks if t.finish is not None),
                default=0.0,
            )
            xfer_span = max(xfer_span, rel_extra + span)
            for t in sched.tasks:
                name = t.name
                if any(match(name) for match in drop_matchers):
                    continue  # the producer's flight carries these bytes
                resources = []
                for res in t.resources:
                    if res == "ingress":
                        self._declare(ingress_name, caps.get(res, 1))
                        resources.append(ingress_name)
                    else:
                        self._declare(res, caps.get(res, 1))
                        resources.append(res)
                task = shared.add_task(
                    prefix + name,
                    t.duration,
                    resources=tuple(resources),
                    release=admit_s + rel_extra + t.release,
                    tag=seq,
                    priority=ordinal,
                )
                ordinal += 1
                created.append(task)
                xfer_tasks.append(task)
        if self._coalescer is not None:
            for flight in self._coalescer.registered(seq):
                match = _flight_matcher(flight)
                flight.tasks = [
                    t for t in created if match(t.name[len(prefix):])
                ]
                if not flight.tasks:
                    # no transfer task of its own (root / view flights):
                    # the flight completes with its receipt
                    flight.finish_s = admit_s + flight.receipt_s
        # the remainder of the serial index phase not already on the
        # timeline as transfers: twig join CPU, locate/root latencies,
        # view consults.  xfer_span is measured from the *serial* private
        # schedules, so an uncontended replay finishes at exactly
        # admit + response_time_s.
        tail = max(0.0, report.response_time_s - report.doc_time_s - xfer_span)
        self._declare(cpu_name, 1)
        join_task = shared.add_task(
            prefix + "join",
            tail,
            deps=tuple(xfer_tasks) + tuple(extra_deps),
            resources=(cpu_name,),
            release=admit_s,
            tag=seq,
            priority=ordinal,
        )
        ordinal += 1
        created.append(join_task)
        for peer_idx, peer_s in doc_peer_times:
            egress = "egress:%d" % peer_idx
            self._declare(egress, 1)
            created.append(
                shared.add_task(
                    prefix + "doc:%d" % peer_idx,
                    peer_s,
                    deps=(join_task,),
                    resources=(egress,),
                    tag=seq,
                    priority=ordinal,
                )
            )
            ordinal += 1
        return created

    # -- observation ------------------------------------------------------------

    def _finish_observation(self, records, shared):
        """Patch traced query roots to their served extents, emit
        admission-wait spans, and feed the shared schedule to metrics."""
        system = self.system
        tracer, metrics = system.tracer, system.metrics
        if tracer is not None:
            for rec in records:
                if rec.root_id is None:
                    continue
                tracer.set_duration(
                    rec.root_id,
                    rec.service_s,
                    args={
                        "arrival_s": rec.arrival_s,
                        "admit_s": rec.admit_s,
                        "queue_wait_s": rec.queue_wait_s,
                        "latency_s": rec.latency_s,
                        "coalesced_fetches": rec.coalesced_fetches,
                    },
                )
                if rec.queue_wait_s > 0:
                    tracer.add(
                        "admit:wait q%d" % rec.seq,
                        "admission",
                        "admission",
                        rec.arrival_s,
                        rec.queue_wait_s,
                        parent=rec.root_id,
                    )
        if metrics is not None:
            observe_schedule(None, metrics, shared)
            from repro.obs.metrics import QUEUE_WAIT_BUCKETS_S

            waits = metrics.histogram("admission_wait_s", QUEUE_WAIT_BUCKETS_S)
            for rec in records:
                waits.observe(rec.queue_wait_s)
            metrics.counter("serving_queries_total").inc(len(records))
            if self._coalescer is not None:
                metrics.counter("coalesced_fetches_total").inc(
                    self._coalescer.hits
                )
