"""Distributed query execution.

KadoP processes a query in two phases (Section 2):

1. the **index query**: posting lists (or DPP blocks, or Bloom-reduced
   lists) of the query's terms are brought to the query peer and combined
   by the holistic twig join, yielding the candidate documents;
2. the **document phase**: the query is sent to the peers holding those
   documents, which evaluate it on the actual trees and ship back answers.

This module really executes both phases (answers are exact) and, in
parallel, accounts the simulated response time with the task scheduler:
posting-list transfers compete for producer egress links and the query
peer's ingress capacity, which is how pipelining (Section 3) and the DPP's
degree-K parallel block fetches (Section 4.2) earn their speedups.
"""

from dataclasses import dataclass, field

from repro.dht.network import OpReceipt
from repro.faults import OpTimeoutError
from repro.obs.trace import observe_schedule
from repro.postings.encoder import encoded_size
from repro.postings.plist import PostingList
from repro.postings.term_relation import label_key, word_key
from repro.query.block_join import (
    Block,
    LazyBlock,
    demand_driven_block_join,
    parallel_block_join,
)
from repro.query.index_plan import build_index_plan
from repro.query.pattern import Axis
from repro.query.twigjoin import twig_join
from repro.sim.tasks import Scheduler

#: small fixed cost for emitting one joined answer tuple
ANSWER_TUPLE_BYTES = 40


@dataclass(frozen=True)
class Answer:
    """One query answer: ``(p, d, e1 ... en)`` as in the paper."""

    peer: int
    doc: int
    bindings: tuple  # sorted tuple of (pattern node_id, Posting)

    @property
    def doc_id(self):
        return (self.peer, self.doc)

    def binding_of(self, node_id):
        for nid, posting in self.bindings:
            if nid == node_id:
                return posting
        raise KeyError(node_id)


@dataclass
class QueryReport:
    """Cost accounting for one query execution."""

    response_time_s: float = 0.0
    time_to_first_s: float = 0.0
    index_time_s: float = 0.0
    doc_time_s: float = 0.0
    traffic: dict = field(default_factory=dict)
    postings_fetched: int = 0
    blocks_fetched: int = 0
    blocks_skipped: int = 0
    candidate_docs: int = 0
    precise: bool = True
    chosen_strategy: str = None  # set when the optimizer ("auto") ran
    complete: bool = True  # False if a document peer timed out (Section 3)
    timed_out_peers: int = 0
    # keys whose fetch exhausted its retries under an active FaultPlan;
    # the query degrades to a partial answer instead of raising
    unreachable_keys: tuple = ()
    block_vectors: int = 0  # meaningful block vectors joined (Section 4.2)
    view_hit: bool = False  # index phase answered from a materialized view
    view_id: str = None  # id of the serving view
    view_materialized: bool = False  # this query triggered materialization

    @property
    def total_bytes(self):
        return sum(self.traffic.values())


def term_key_of(node):
    """The DHT key of a pattern node's term."""
    kind, value = node.term
    return label_key(value) if kind == "label" else word_key(value)


class QueryExecutor:
    """Runs tree-pattern queries against a KadoP network."""

    def __init__(self, system):
        self.system = system
        # serving-engine capture (repro.kadop.serving): when not None, every
        # finished transfer schedule is appended as ``(scheduler, rel_extra)``
        # instead of being fed to the metrics registry — the engine replays
        # the tasks into its shared timeline and feeds metrics once from
        # there, so resource counters are not double-counted
        self._capture = None
        # per-peer document-phase times of the most recent run, as
        # ``[(peer_index, time_s)]`` — the serving engine turns these into
        # per-peer egress tasks on the shared timeline
        self._last_doc_peer_times = None

    # -- entry point -------------------------------------------------------------

    def run(self, pattern, src_peer, strategy=None):
        """Execute ``pattern`` from ``src_peer``.

        Returns ``(answers, report)``.  ``strategy`` overrides the
        configured Bloom filter strategy for this query."""
        system = self.system
        config = system.config
        meter = system.net.meter
        snapshot = meter.snapshot()
        report = QueryReport()
        # keys that timed out under an active FaultPlan this run; a nested
        # run (view materialization) resets and drains it for its own
        # report before control returns here
        self._unreachable = set()

        # tracing (repro.obs): purely observational span recording.  A
        # nested run (view materialization) keeps the outer query context —
        # its DHT ops attach there — rather than opening a second root.
        tracer = system.tracer
        ctx = None
        if tracer is not None and not tracer.active:
            ctx = tracer.begin_query(
                pattern.to_string() if hasattr(pattern, "to_string") else repr(pattern),
                args={"src_peer": src_peer.index},
            )

        plan = build_index_plan(pattern)
        report.precise = plan.precise

        try:
            view_outcome = (
                system.views.pre_query(pattern, plan, src_peer)
                if system.views is not None
                else None
            )
        except OpTimeoutError as exc:
            # view machinery unreachable: fall back to the base index path
            self._unreachable.add(exc.key)
            view_outcome = None
        if view_outcome is not None and view_outcome.served:
            # the view hands us the candidate documents directly; the
            # document phase below runs unchanged, so answers are identical
            # to base evaluation (and exact views restore precision even
            # for plans the index evaluates imprecisely — their documents
            # come from verified answers, not from index postings)
            report.view_hit = True
            report.view_id = view_outcome.view_id
            report.view_materialized = view_outcome.materialized
            report.precise = view_outcome.exact
            report.postings_fetched = view_outcome.postings
            report.index_time_s = view_outcome.time_s
            report.time_to_first_s = view_outcome.ttfa_s
            candidate_docs = set(view_outcome.docs)
            report.candidate_docs = len(candidate_docs)
            doc_span = None
            if ctx is not None:
                tracer.add(
                    "view:serve %s" % view_outcome.view_id,
                    "view",
                    "query",
                    ctx.base,
                    view_outcome.time_s,
                    args={
                        "view_id": view_outcome.view_id,
                        "materialized": view_outcome.materialized,
                        "postings": view_outcome.postings,
                    },
                    parent=ctx.root_id,
                )
                doc_span = tracer.add(
                    "phase:document",
                    "phase",
                    "query",
                    ctx.base + report.index_time_s,
                    0.0,
                    parent=ctx.root_id,
                )
                ctx.offset = report.index_time_s
                ctx.parent_id = doc_span
            answers, doc_time, timed_out = self._document_phase(
                pattern, src_peer, candidate_docs
            )
            report.timed_out_peers = timed_out
            report.complete = timed_out == 0
            report.doc_time_s = doc_time
            report.response_time_s = report.index_time_s + doc_time
            report.time_to_first_s += doc_time
            report.traffic = meter.delta_since(snapshot)
            self._finish_observation(ctx, doc_span, report, answers)
            return answers, report
        view_overhead = view_outcome.overhead_s if view_outcome else 0.0

        index_span = None
        if ctx is not None:
            index_span = tracer.add(
                "phase:index", "phase", "query", ctx.base, 0.0, parent=ctx.root_id
            )
            if view_outcome is not None and view_outcome.overhead_s:
                tracer.add(
                    "view:consult",
                    "view",
                    "query",
                    ctx.base,
                    view_outcome.overhead_s,
                    args={"materialized": view_outcome.materialized},
                    parent=index_span,
                )
            ctx.offset = view_overhead
            ctx.parent_id = index_span

        strategy = strategy if strategy is not None else config.filter_strategy
        candidate_docs = set()
        first = True
        for component, node_map in zip(plan.components, plan.node_maps):
            component_strategy = strategy
            if strategy == "auto":
                choice = system.optimizer.choose(component, src_peer)
                component_strategy = choice.executor_strategy
                report.chosen_strategy = choice.strategy
                report.index_time_s = max(report.index_time_s, choice.stats_time_s)
                if ctx is not None:
                    tracer.add(
                        "optimize:%s" % choice.strategy,
                        "optimizer",
                        "query",
                        ctx.now(),
                        choice.stats_time_s,
                        args={"strategy": choice.strategy},
                        parent=index_span,
                    )
            if component_strategy == "pushdown" and len(component) > 1:
                push_span = None
                if ctx is not None:
                    push_span = tracer.add(
                        "fetch[pushdown]",
                        "fetch",
                        "query",
                        ctx.now(),
                        0.0,
                        args={"terms": len(component)},
                        parent=index_span,
                    )
                    ctx.parent_id = push_span
                docs, push_time = self._pushdown_join(component, src_peer, report)
                report.index_time_s = max(report.index_time_s, push_time)
                report.time_to_first_s = max(report.time_to_first_s, push_time)
                if ctx is not None:
                    tracer.set_duration(push_span, push_time)
                    ctx.parent_id = index_span
                if first:
                    candidate_docs = docs
                    first = False
                else:
                    candidate_docs &= docs
                if not candidate_docs:
                    break
                continue
            if component_strategy == "pushdown":
                component_strategy = None  # single term: nothing to push
            fetch_span = None
            if ctx is not None:
                # opened before the fetch so the DHT ops and scheduler
                # tasks inside attach to it; duration patched after.
                # Bloom-filter exchanges get their own category so the
                # profile can split reducer traffic from plain fetches.
                label = component_strategy or (
                    self._dpp_label() if config.use_dpp else "plain"
                )
                fetch_span = tracer.add(
                    "fetch[%s]" % label,
                    "bloom" if component_strategy else "fetch",
                    "query",
                    ctx.now(),
                    0.0,
                    args={"terms": len(component)},
                    parent=index_span,
                )
                ctx.parent_id = fetch_span
            try:
                streams, fetch_time, ttfa = self._fetch_streams(
                    component, src_peer, component_strategy
                )
            except OpTimeoutError as exc:
                # this component's fetch died beyond its inner recovery
                # (e.g. a reducer exchange): skip it — the document phase
                # verifies the full pattern on whatever candidates remain,
                # so answers stay exact, just possibly incomplete
                self._unreachable.add(exc.key)
                if ctx is not None:
                    ctx.parent_id = index_span
                continue
            report.postings_fetched += sum(len(s) for s in streams.values())
            join_inputs = sum(len(s) for s in streams.values())
            join_cpu = system.net.cost.join_time(join_inputs)
            if ctx is not None:
                tracer.set_duration(
                    fetch_span, fetch_time, args={"postings": join_inputs}
                )
                ctx.parent_id = index_span
                join_start = (
                    ctx.now()
                    if (config.pipelined_get or config.use_dpp)
                    else ctx.now() + fetch_time
                )
                tracer.add(
                    "twig-join",
                    "join",
                    "query",
                    join_start,
                    join_cpu,
                    args={"inputs": join_inputs},
                    parent=index_span,
                )
            if config.pipelined_get or config.use_dpp:
                component_time = max(fetch_time, join_cpu)
                component_ttfa = ttfa + system.net.cost.join_time(
                    min(config.chunk_postings, max(join_inputs, 1))
                )
            else:
                component_time = fetch_time + join_cpu
                component_ttfa = component_time
            report.index_time_s = max(report.index_time_s, component_time)
            report.time_to_first_s = max(report.time_to_first_s, component_ttfa)

            dpp_blocks = getattr(self, "_last_dpp_blocks", None)
            self._last_dpp_blocks = None
            dpp_solutions = getattr(self, "_last_dpp_solutions", None)
            self._last_dpp_solutions = None
            if config.index_granularity == "document":
                # coarse index (Section 8): only (p, d) is recorded, so the
                # index query degenerates to a document-id intersection —
                # complete but imprecise
                report.precise = False
                docs = None
                for stream in streams.values():
                    stream_docs = set(stream.doc_ids())
                    docs = stream_docs if docs is None else docs & stream_docs
                docs = docs or set()
            elif dpp_solutions is not None:
                # lazy mode already ran the demand-driven block join while
                # fetching — the solutions drove which blocks were pulled
                bindings, vectors = dpp_solutions
                report.block_vectors += vectors
                docs = {
                    (
                        sol[component.root.node_id].peer,
                        sol[component.root.node_id].doc,
                    )
                    for sol in bindings
                }
            elif dpp_blocks is not None:
                # the block-based parallel twig join of Section 4.2: join
                # meaningful block vectors instead of merged lists
                result = parallel_block_join(component, dpp_blocks)
                report.block_vectors += result.vectors_considered
                bindings = result.solutions
                docs = {
                    (
                        sol[component.root.node_id].peer,
                        sol[component.root.node_id].doc,
                    )
                    for sol in bindings
                }
            else:
                bindings = twig_join(component, streams)
                docs = {
                    (
                        sol[component.root.node_id].peer,
                        sol[component.root.node_id].doc,
                    )
                    for sol in bindings
                }
            if first:
                candidate_docs = docs
                first = False
            else:
                candidate_docs &= docs
            if not candidate_docs:
                break

        # the rewriter consult (and any failed materialization) happened
        # before the index fetches, so it adds serially
        report.index_time_s += view_overhead
        report.time_to_first_s += view_overhead
        report.candidate_docs = len(candidate_docs)
        doc_span = None
        if ctx is not None:
            tracer.set_duration(index_span, report.index_time_s)
            doc_span = tracer.add(
                "phase:document",
                "phase",
                "query",
                ctx.base + report.index_time_s,
                0.0,
                parent=ctx.root_id,
            )
            ctx.offset = report.index_time_s
            ctx.parent_id = doc_span
        answers, doc_time, timed_out = self._document_phase(
            pattern, src_peer, candidate_docs
        )
        report.timed_out_peers = timed_out
        report.complete = timed_out == 0
        report.doc_time_s = doc_time
        report.response_time_s = report.index_time_s + doc_time
        report.time_to_first_s += doc_time
        report.traffic = meter.delta_since(snapshot)
        self._merge_dpp_counters(report)
        self._finish_observation(ctx, doc_span, report, answers)
        return answers, report

    def _finish_observation(self, ctx, doc_span, report, answers):
        """Close the query's trace context and bump per-query counters.

        Also the single merge point (both exits of :meth:`run` pass here)
        for graceful degradation: keys whose fetch timed out under a
        FaultPlan land in the report instead of raising."""
        unreachable = getattr(self, "_unreachable", None)
        if unreachable:
            report.unreachable_keys = tuple(sorted(unreachable))
            report.complete = False
        self._unreachable = set()
        system = self.system
        if system.metrics is not None:
            system.metrics.counter("queries_total").inc()
            system.metrics.counter("answers_total").inc(len(answers))
            if report.view_hit:
                system.metrics.counter("view_hits_total").inc()
            if report.blocks_fetched or report.blocks_skipped:
                system.metrics.counter("blocks_fetched_total").inc(
                    report.blocks_fetched
                )
                system.metrics.counter("blocks_pruned_total").inc(
                    report.blocks_skipped
                )
        if ctx is None:
            return
        tracer = system.tracer
        if doc_span is not None:
            tracer.set_duration(doc_span, report.doc_time_s)
        tracer.end_query(
            ctx,
            report.response_time_s,
            args={
                "answers": len(answers),
                "candidate_docs": report.candidate_docs,
                "total_bytes": report.total_bytes,
                "strategy": report.chosen_strategy,
                "view_hit": report.view_hit,
            },
        )

    def _merge_dpp_counters(self, report):
        counters = getattr(self, "_last_dpp_counters", None)
        if counters:
            report.blocks_fetched, report.blocks_skipped = counters
        self._last_dpp_counters = None

    # -- index phase -------------------------------------------------------------

    def _fetch_streams(self, component, src_peer, strategy):
        """Bring every node's posting list to the query peer.

        Returns ``(streams, fetch_time_s, time_to_first_data_s)``."""
        if strategy:
            return self.system.reducers.fetch_reduced(
                component, src_peer, strategy
            )
        if self.system.config.use_dpp:
            return self._fetch_dpp(component, src_peer)
        return self._fetch_plain(component, src_peer)

    def _ingress_slots(self):
        cost = self.system.net.cost.params
        return max(1, int(cost.ingress_bw / cost.egress_bw))

    def _scheduler(self):
        """A transfer scheduler wired to the network's FaultPlan (if any),
        so bulk transfers see the plan's deterministic link jitter."""
        scheduler = Scheduler()
        plan = self.system.net.faults
        if plan is not None:
            scheduler.install_faults(plan)
        return scheduler

    def _fetch_plain(self, component, src_peer):
        """One stream per term, each from the term owner (Section 3)."""
        system = self.system
        net = system.net
        config = system.config
        streams = {}
        term_lists = {}
        holders = {}  # key -> node that actually served the fetch
        locate_time = 0.0
        for node in component.nodes():
            key = term_key_of(node)
            if key not in term_lists:
                try:
                    if config.pipelined_get:
                        chunks, receipt = net.pipelined_get(
                            src_peer.node, key, config.chunk_postings
                        )
                        merged = PostingList()
                        for chunk in chunks:
                            merged = merged.merge(chunk)
                        term_lists[key] = (merged, receipt)
                    else:
                        plist, receipt = net.get(src_peer.node, key)
                        term_lists[key] = (plist, receipt)
                    holders[key] = net.last_holder
                except OpTimeoutError as exc:
                    # unreachable term: degrade to an empty stream (the
                    # join then under-approximates; the report's
                    # unreachable_keys names what was lost)
                    self._unreachable.add(exc.key)
                    term_lists[key] = (
                        PostingList(),
                        exc.receipt if exc.receipt is not None else OpReceipt(),
                    )
                    streams[node.node_id] = term_lists[key][0]
                    continue
                locate_time = max(locate_time, receipt.duration_s)
            streams[node.node_id] = term_lists[key][0]

        scheduler = self._scheduler()
        ingress = scheduler.add_resource("ingress", self._ingress_slots())
        ttfa = 0.0
        for key, (plist, receipt) in term_lists.items():
            nbytes = encoded_size(plist)
            if config.striped_replica_fetch and net.replication > 1:
                # Section 4.2: "the transfer of a posting list can be
                # optimized by replicating it and transferring fragments
                # from different copies" — one fragment per replica, each
                # on its own egress link
                replicas = net.replica_nodes(key)
                fragment = net.cost.transfer_time(
                    nbytes / len(replicas), hops=1
                )
                for i, holder in enumerate(replicas):
                    egress = "egress:%d" % holder.peer_index
                    if not scheduler.has_resource(egress):
                        scheduler.add_resource(egress, 1)
                    scheduler.add_task(
                        "xfer:%s:%d" % (key, i),
                        fragment,
                        resources=(egress, ingress),
                    )
            else:
                # charge the transfer to the node that actually served the
                # fetch (a fanned-out replica or hot extra copy under the
                # balancer; the owner otherwise), so queue-wait spans point
                # at the congested link — coalesced fetches moved no bytes
                # and keep the owner's link as their nominal egress
                holder = holders.get(key) or net.owner_of(key)
                egress = "egress:%d" % holder.peer_index
                if not scheduler.has_resource(egress):
                    scheduler.add_resource(egress, 1)
                scheduler.add_task(
                    "xfer:%s" % key,
                    net.cost.transfer_time(nbytes, hops=1),
                    resources=(egress, ingress),
                )
            # the receipt's duration already covers locate + first chunk
            ttfa = max(ttfa, receipt.duration_s)
        makespan = scheduler.run()
        self._observe_schedule(scheduler, rel_extra=locate_time)
        return streams, locate_time + makespan, ttfa

    def _observe_schedule(self, scheduler, rel_extra=0.0):
        """Hand a finished transfer schedule to the tracer/metrics.

        ``rel_extra`` is the simulated time between the current phase
        offset and the schedule's t=0 (locate/root-block latency)."""
        system = self.system
        tracer, metrics = system.tracer, system.metrics
        if self._capture is not None:
            # serving capture: the engine replays these tasks into the
            # shared timeline and feeds the metrics registry from there
            self._capture.append((scheduler, rel_extra))
            metrics = None
        if tracer is None and metrics is None:
            return
        ctx = tracer.context if tracer is not None else None
        rel_base = (ctx.offset if ctx is not None else 0.0) + rel_extra
        observe_schedule(tracer, metrics, scheduler, rel_base=rel_base)

    def _dpp_label(self):
        """The effective DPP fetch mode (for span labels and reports)."""
        config = self.system.config
        if (
            config.dpp_fetch_mode == "lazy"
            and self.system.dpp.ordered_splits
            and config.index_granularity == "element"
        ):
            return "lazy"
        return "dpp" if config.dpp_fetch_mode != "eager" else "eager"

    def _fetch_dpp(self, component, src_peer):
        """DPP block retrieval, in one of three modes (``dpp_fetch_mode``):

        ``eager``   fetch every block of every term, unfiltered — the
                    baseline the ablation compares against;
        ``window``  the paper's Section 4.2 ``[min, max]`` document window
                    plus type filtering, fetching every surviving block;
        ``lazy``    window + zone-map pruning, then *demand-driven*
                    fetching: blocks are handed to the block join as
                    unfetched cursors and transferred only when a
                    meaningful vector reaches their document range.

        Lazy mode needs ordered splits (random scattering overlaps every
        condition, so block bounds cannot guide the join) and element
        granularity (document-granularity postings carry no usable
        structure); otherwise it degrades to window behaviour.
        """
        system = self.system
        net = system.net
        dpp = system.dpp
        config = system.config

        nodes = component.nodes()
        roots = {}
        root_time = 0.0
        for node in nodes:
            key = term_key_of(node)
            if key in roots:
                continue
            try:
                root, receipt = dpp.root(src_peer.node, key)
            except OpTimeoutError as exc:
                # unreachable root: treated like a term with no postings
                # (the missing-entries early return below), flagged in the
                # report's unreachable_keys
                self._unreachable.add(exc.key)
                roots[key] = None
                continue
            roots[key] = root
            root_time = max(root_time, receipt.duration_s)

        # the [min, max] document window of Section 4.2
        lo_docs, hi_docs = [], []
        for root in roots.values():
            entries = [e for e in (root.entries if root else []) if e.condition]
            if not entries:
                return (
                    {node.node_id: PostingList() for node in nodes},
                    root_time,
                    root_time,
                )
            lo_docs.append(entries[0].condition.lo_doc)
            hi_docs.append(entries[-1].condition.hi_doc)
        doc_lo = max(lo_docs)
        doc_hi = min(hi_docs)

        # type filtering (Section 4.1): a document type can only yield
        # answers if *every* query term has postings of that type, so the
        # viable types are the intersection of the per-term type sets
        viable_types = None
        for root in roots.values():
            term_types = set()
            for entry in root.entries:
                term_types |= entry.types
            if viable_types is None:
                viable_types = set(term_types)
            else:
                viable_types &= term_types
        viable_types = viable_types or set()

        if self._dpp_label() == "lazy":
            return self._fetch_dpp_lazy(
                component, src_peer, roots, root_time,
                doc_lo, doc_hi, viable_types,
            )

        use_window = config.dpp_fetch_mode != "eager"
        scheduler = self._scheduler()
        ingress = scheduler.add_resource("ingress", config.parallelism)
        fetched, skipped = 0, 0
        term_lists = {}
        term_blocks = {}
        ttfa = root_time
        for key, root in roots.items():
            parts = []
            blocks = []
            first_block_time = None
            for entry in root.entries:
                if entry.condition is None:
                    continue
                if use_window:
                    if doc_hi < doc_lo or not entry.condition.intersects_docs(
                        doc_lo, doc_hi
                    ):
                        skipped += 1
                        continue
                    if entry.types and viable_types and not (
                        entry.types & viable_types
                    ):
                        skipped += 1
                        continue
                try:
                    postings, holder, receipt = dpp.fetch_block(
                        src_peer.node, key, entry,
                        doc_lo if use_window else None,
                        doc_hi if use_window else None,
                    )
                except OpTimeoutError as exc:
                    # an unreachable block counts as skipped so the
                    # blocks_fetched + blocks_skipped conservation holds
                    self._unreachable.add(exc.key)
                    skipped += 1
                    continue
                fetched += 1
                parts.append(postings)
                if len(postings):
                    blocks.append(Block(postings))
                egress = "egress:%d" % holder.peer_index
                if not scheduler.has_resource(egress):
                    scheduler.add_resource(egress, 1)
                scheduler.add_task(
                    "blk:%s:%d" % (key, entry.seq),
                    receipt.duration_s,
                    resources=(egress, ingress),
                )
                if first_block_time is None:
                    first_block_time = receipt.duration_s
            term_lists[key] = PostingList.concat(parts)
            term_blocks[key] = blocks
            if first_block_time is not None:
                ttfa = max(ttfa, root_time + first_block_time)
        makespan = scheduler.run()
        self._observe_schedule(scheduler, rel_extra=root_time)
        self._last_dpp_counters = (fetched, skipped)
        streams = {
            node.node_id: term_lists[term_key_of(node)] for node in nodes
        }
        if dpp.ordered_splits and all(term_blocks.values()):
            self._last_dpp_blocks = {
                node.node_id: term_blocks[term_key_of(node)] for node in nodes
            }
        return streams, root_time + makespan, ttfa

    @staticmethod
    def _zone_level_bounds(entries):
        """Aggregate ``[min, max]`` tree level over candidate block zones."""
        levels = [
            (e.zone.min_level, e.zone.max_level)
            for e in entries
            if e.zone is not None
        ]
        if not levels:
            return 0, float("inf")
        return min(lo for lo, _ in levels), max(hi for _, hi in levels)

    @staticmethod
    def _zone_level_prune(keep, nodes):
        """Drop candidate blocks whose level zone cannot satisfy an axis.

        For an edge ``p -[axis]-> n`` every match binds ``n`` to an element
        structurally below (or at, for descendant-or-self) *some* ``p``
        element in the same document, so across all documents:

        * CHILD:      ``n.level == p.level + 1`` exactly (the axis
                      predicate itself checks this);
        * DESCENDANT: ``n.level >= p.level + 1`` (containment in a
                      well-formed tree implies a strictly deeper level);
        * DESC-OR-SELF: ``n.level >= p.level``.

        A block all of whose levels fall outside what the other side's
        blocks can pair with is pruned.  Bounds are zone aggregates, hence
        conservative; one pass per edge (no fixpoint needed for soundness).
        """
        for parent in nodes:
            for child in parent.children:
                axis = child.axis
                p_lo, p_hi = QueryExecutor._zone_level_bounds(keep[parent.node_id])
                c_lo, c_hi = QueryExecutor._zone_level_bounds(keep[child.node_id])
                if axis is Axis.CHILD:
                    child_ok = lambda z: (  # noqa: E731
                        z.max_level >= p_lo + 1 and z.min_level <= p_hi + 1
                    )
                    parent_ok = lambda z: (  # noqa: E731
                        z.max_level >= c_lo - 1 and z.min_level <= c_hi - 1
                    )
                elif axis is Axis.DESCENDANT:
                    child_ok = lambda z: z.max_level >= p_lo + 1  # noqa: E731
                    parent_ok = lambda z: z.min_level <= c_hi - 1  # noqa: E731
                else:  # DESCENDANT_OR_SELF
                    child_ok = lambda z: z.max_level >= p_lo  # noqa: E731
                    parent_ok = lambda z: z.min_level <= c_hi  # noqa: E731
                keep[child.node_id] = [
                    e for e in keep[child.node_id]
                    if e.zone is None or child_ok(e.zone)
                ]
                keep[parent.node_id] = [
                    e for e in keep[parent.node_id]
                    if e.zone is None or parent_ok(e.zone)
                ]

    def _fetch_dpp_lazy(
        self, component, src_peer, roots, root_time, doc_lo, doc_hi, viable_types
    ):
        """Zone-map–pruned, demand-driven block fetching (the lazy mode).

        Candidate blocks survive the document window, type, and zone-map
        level filters; the survivors become :class:`LazyBlock` cursors and
        :func:`demand_driven_block_join` fetches only the ones a meaningful
        vector actually reaches.  Fetches are charged to the scheduler as
        they are demanded, released at ``root_time`` (they cannot start
        before the root blocks have arrived); accounting holds
        ``blocks_fetched + blocks_skipped == total blocks`` with every
        never-fetched block counted as skipped.
        """
        system = self.system
        net = system.net
        dpp = system.dpp
        config = system.config
        nodes = component.nodes()

        total_entries = sum(
            sum(1 for e in root.entries if e.condition is not None)
            for root in roots.values()
        )

        # window + type pre-filter, once per unique term
        candidates = {}
        for key, root in roots.items():
            cands = []
            for entry in root.entries:
                if entry.condition is None:
                    continue
                if doc_hi < doc_lo or not entry.condition.intersects_docs(
                    doc_lo, doc_hi
                ):
                    continue
                if entry.types and viable_types and not (
                    entry.types & viable_types
                ):
                    continue
                cands.append(entry)
            candidates[key] = cands

        # zone-map level pruning, per pattern edge
        keep = {
            node.node_id: list(candidates[term_key_of(node)]) for node in nodes
        }
        self._zone_level_prune(keep, nodes)

        scheduler = self._scheduler()
        ingress = scheduler.add_resource("ingress", config.parallelism)
        term_parts = {key: [] for key in roots}
        state = {"fetched": 0, "first": None}

        def make_loader(key, entry):
            def load():
                try:
                    postings, holder, receipt = dpp.fetch_block(
                        src_peer.node, key, entry, doc_lo, doc_hi
                    )
                except OpTimeoutError as exc:
                    # the demanded block never arrived: the join continues
                    # with an empty cursor and, because ``fetched`` is not
                    # bumped, the block lands on the skipped side of the
                    # conservation count
                    self._unreachable.add(exc.key)
                    return PostingList()
                state["fetched"] += 1
                if state["first"] is None:
                    state["first"] = receipt.duration_s
                egress = "egress:%d" % holder.peer_index
                if not scheduler.has_resource(egress):
                    scheduler.add_resource(egress, 1)
                scheduler.add_task(
                    "blk:%s:%d" % (key, entry.seq),
                    receipt.duration_s,
                    resources=(egress, ingress),
                    release=root_time,
                )
                term_parts[key].append(postings)
                return postings

            return load

        # one LazyBlock per surviving (term, block): nodes sharing a term
        # share the cursor, so a block is transferred at most once
        lazy_by_entry = {}
        lazy_per_node = {}
        for node in nodes:
            key = term_key_of(node)
            lazies = []
            for entry in keep[node.node_id]:
                cursor = lazy_by_entry.get((key, entry.seq))
                if cursor is None:
                    cond = entry.condition
                    cursor = LazyBlock(
                        max(cond.lo_doc, doc_lo),
                        min(cond.hi_doc, doc_hi),
                        make_loader(key, entry),
                        count=entry.zone.count if entry.zone else 0,
                    )
                    lazy_by_entry[(key, entry.seq)] = cursor
                lazies.append(cursor)
            lazy_per_node[node.node_id] = lazies

        result = demand_driven_block_join(component, lazy_per_node)

        makespan = scheduler.run()
        fetch_time = max(root_time, makespan)
        self._observe_schedule(scheduler, rel_extra=0.0)
        fetched = state["fetched"]
        self._last_dpp_counters = (fetched, total_entries - fetched)
        self._last_dpp_solutions = (
            result.solutions, result.vectors_considered
        )
        term_lists = {
            key: PostingList.concat(parts) for key, parts in term_parts.items()
        }
        streams = {
            node.node_id: term_lists[term_key_of(node)] for node in nodes
        }
        ttfa = root_time + (state["first"] or 0.0)
        return streams, fetch_time, ttfa

    # -- join pushdown (Section 4.2) ----------------------------------------------

    def _pushdown_join(self, component, src_peer, report):
        """Ship the *small* lists to the peer holding the longest one and
        join there; only the join results travel back.

        "Some structural joins could be pushed to the peer holding the
        longest posting list involved in the query, thus reducing data
        transfers" (Section 4.2).  Returns ``(candidate_docs, time_s)``.
        """
        net = self.system.net
        nodes = component.nodes()
        term_lists = {}
        owners = {}
        locate_time = 0.0
        for node in nodes:
            key = term_key_of(node)
            if key not in term_lists:
                try:
                    owner, receipt = net.locate(src_peer.node, key)
                except OpTimeoutError as exc:
                    # unreachable term: joins against an empty list at the
                    # host; named in the report's unreachable_keys
                    self._unreachable.add(exc.key)
                    owners[key] = src_peer.node
                    term_lists[key] = PostingList()
                    continue
                owners[key] = owner
                term_lists[key] = owner.store.get(key)
                locate_time = max(locate_time, receipt.duration_s)

        host_key = max(term_lists, key=lambda k: len(term_lists[k]))
        host = owners[host_key]

        # the other lists travel to the host (parallel, host-ingress bound)
        scheduler = self._scheduler()
        ingress = scheduler.add_resource("ingress", self._ingress_slots())
        for key, plist in term_lists.items():
            if key == host_key:
                continue  # already local to the host
            nbytes = encoded_size(plist)
            net.meter.record("postings", nbytes)
            report.postings_fetched += len(plist)
            egress = "egress:%d" % owners[key].peer_index
            if not scheduler.has_resource(egress):
                scheduler.add_resource(egress, 1)
            scheduler.add_task(
                "push:%s" % key,
                net.cost.transfer_time(nbytes, hops=1),
                resources=(egress, ingress),
            )
        transfer_time = scheduler.run()
        self._observe_schedule(scheduler, rel_extra=locate_time)

        # the host runs the twig join locally over its own (disk) list
        streams = {
            node.node_id: term_lists[term_key_of(node)] for node in nodes
        }
        report.postings_fetched += len(term_lists[host_key])
        bindings = twig_join(component, streams)
        join_time = net.cost.join_time(sum(len(s) for s in streams.values()))

        # only the join results return to the query peer
        result_postings = sorted(
            {posting for sol in bindings for posting in sol.values()}
        )
        result_bytes = encoded_size(result_postings) + ANSWER_TUPLE_BYTES
        net.meter.record("postings", result_bytes)
        ship_time = net.cost.transfer_time(result_bytes, hops=1)

        docs = {
            (sol[component.root.node_id].peer, sol[component.root.node_id].doc)
            for sol in bindings
        }
        return docs, locate_time + transfer_time + join_time + ship_time

    # -- document phase -------------------------------------------------------------

    def _document_phase(self, pattern, src_peer, candidate_docs):
        """Ship the query to document peers, collect exact answers.

        A candidate peer that left the network is detected by timeout
        (Section 3): its documents' answers are missing and the result is
        flagged incomplete.  Returns ``(answers, doc_time_s, timed_out)``.
        """
        system = self.system
        net = system.net
        tracer = system.tracer
        ctx = tracer.context if tracer is not None else None
        timeout_s = 4 * net.cost.params.hop_latency_s
        by_peer = {}
        for peer_idx, doc_idx in sorted(candidate_docs):
            # functional documents (Section 6) are index-only, never answers
            if doc_idx in system.peers[peer_idx].functional_docs:
                continue
            by_peer.setdefault(peer_idx, []).append(doc_idx)

        answers = []
        peer_times = []
        doc_peer_times = []
        timed_out = 0
        for peer_idx, doc_indexes in by_peer.items():
            peer = system.peers[peer_idx]
            if not peer.node.alive:
                timed_out += 1
                peer_times.append(timeout_s)
                doc_peer_times.append((peer_idx, timeout_s))
                if ctx is not None:
                    tracer.add(
                        "doc:timeout peer%d" % peer_idx,
                        "doc",
                        "peer:%d" % peer_idx,
                        ctx.now(),
                        timeout_s,
                        args={
                            "timed_out": True,
                            "peer": peer_idx,
                            "docs": len(doc_indexes),
                        },
                        parent=ctx.parent_id,
                    )
                continue
            sent_bytes = 0
            matched = 0
            for doc_idx in doc_indexes:
                if doc_idx not in peer.documents:
                    # a candidate the peer no longer holds: an unpublished
                    # document whose postings linger somewhere (a stale
                    # view block awaiting its delta, or a resurrected
                    # index copy from a crash-restarted replica).  The
                    # document peer simply answers "no such document",
                    # keeping answers sound under update-heavy churn
                    continue
                for postings, _incomplete in peer.evaluate(pattern, doc_idx):
                    answers.append(
                        Answer(
                            peer_idx,
                            doc_idx,
                            tuple(sorted(postings.items())),
                        )
                    )
                    matched += 1
                    sent_bytes += ANSWER_TUPLE_BYTES + encoded_size(
                        sorted(postings.values())
                    )
            # query shipping + answer return, one round trip per doc peer
            hops = net.cost.expected_hops(len(net.alive_nodes()))
            net.meter.record("control", 64 * hops)
            net.meter.record("documents", sent_bytes)
            peer_time = net.cost.transfer_time(64, hops=hops) + net.cost.transfer_time(
                sent_bytes, hops=1
            )
            peer_times.append(peer_time)
            doc_peer_times.append((peer_idx, peer_time))
            if ctx is not None:
                tracer.add(
                    "doc:peer%d" % peer_idx,
                    "doc",
                    "peer:%d" % peer_idx,
                    ctx.now(),
                    peer_time,
                    args={
                        "peer": peer_idx,
                        "docs": len(doc_indexes),
                        "answers": matched,
                        "bytes": sent_bytes,
                        # the query-ship round trip metered just above, so
                        # EXPLAIN can attribute it to this doc peer exactly
                        "control_bytes": 64 * hops,
                    },
                    parent=ctx.parent_id,
                )
        doc_time = max(peer_times) if peer_times else 0.0
        self._last_doc_peer_times = doc_peer_times
        answers.sort(key=lambda a: (a.peer, a.doc, a.bindings))
        return answers, doc_time, timed_out
