"""Cost-based selection of the query evaluation strategy.

Section 5.4 ends with the heuristic the system uses — "we identify the
subset of the query that has a guaranteed low selectivity factor, by
examining the sizes of the stored posting lists, and we apply Structural
Bloom Filters on the specific subset" — and Section 8 announces a cost
model and optimizer as work in progress.  This module implements that
optimizer over the statistics a KadoP index can actually provide:

1. for each query term, the owner peer reports its posting count and
   distinct document count (a small control round trip, charged);
2. per-strategy traffic is estimated with an explicit reduction model:
   a filter built from a list spanning ``d_f`` documents keeps roughly a
   ``min(1, d_f / d_x)`` fraction of a list spanning ``d_x`` documents
   (document overlap is the dominant, estimable factor; structural overlap
   within a document is not estimable from index statistics);
3. filter wire sizes follow the actual Bloom sizing formulas;
4. the cheapest of {baseline, ab, db, bloom, subquery} is chosen.

The optimizer is deliberately conservative: when no strategy's *estimate*
beats the baseline, it ships full lists (filters are never free).
"""

import math
from dataclasses import dataclass, field

from repro.bloom.structural import psi
from repro.dht.network import CONTROL_BYTES
from repro.kadop.execution import term_key_of
from repro.query.pattern import Axis

#: average wire bytes of one delta-encoded posting
POSTING_BYTES = 4.0

#: average dyadic-cover size (Table 1 territory)
AVG_COVER = 1.4

@dataclass
class TermStats:
    """Owner-reported statistics of one term's posting list."""

    postings: int
    documents: int
    max_end: int = 1  # largest end-tag number seen (sizes filter domains)

    @property
    def wire_bytes(self):
        return self.postings * POSTING_BYTES


@dataclass
class Choice:
    """The optimizer's decision and its reasoning."""

    strategy: str  # None is encoded as "baseline"
    estimates: dict = field(default_factory=dict)
    stats_time_s: float = 0.0

    @property
    def executor_strategy(self):
        return None if self.strategy == "baseline" else self.strategy


def _bits_per_item(fp_rate):
    return -math.log(fp_rate) / (math.log(2) ** 2)


class StrategyOptimizer:
    """Chooses a filter strategy for a pattern before execution."""

    def __init__(self, system):
        self.system = system

    # -- statistics gathering ---------------------------------------------------

    def gather_stats(self, component, src_peer):
        """Ask each term's owner for (postings, documents) counts.

        Returns ``({node_id: TermStats}, simulated_seconds)``; the control
        round trips run in parallel, so time is the slowest one."""
        net = self.system.net
        stats = {}
        per_term = {}
        slowest = 0.0
        for node in component.nodes():
            key = term_key_of(node)
            if key not in per_term:
                owner, receipt = net.locate(src_peer.node, key)
                plist = owner.store.get(key)
                per_term[key] = TermStats(
                    postings=len(plist),
                    documents=len(plist.doc_ids()),
                    max_end=max((p.end for p in plist), default=1),
                )
                net.meter.record("control", CONTROL_BYTES)
                slowest = max(
                    slowest,
                    receipt.duration_s + net.cost.transfer_time(CONTROL_BYTES),
                )
            stats[node.node_id] = per_term[key]
        return stats, slowest

    # -- reduction model ----------------------------------------------------------

    @staticmethod
    def _survival(filter_docs, target_docs):
        """AB survival: a descendant survives only if its document holds
        some filter posting, so the document-overlap ratio bounds it."""
        if target_docs <= 0:
            return 0.0
        return min(1.0, filter_docs / target_docs)

    @staticmethod
    def _survival_db(filter_postings, target_postings):
        """DB survival: every kept ancestor needs at least one (mostly
        distinct) filter posting in its subtree, so the posting-count
        ratio bounds the kept fraction — much tighter than document
        overlap when the filter list is small."""
        if target_postings <= 0:
            return 0.0
        return min(1.0, filter_postings / target_postings)

    def _domain_level(self, stats):
        """The dyadic domain depth l implied by the gathered statistics."""
        from repro.bloom.dyadic import level_for

        max_end = max((s.max_end for s in stats.values()), default=1)
        return level_for(max(max_end, 1))

    def _ab_filter_bytes(self, postings):
        config = self.system.config
        avg_psi = psi(4, config.psi_c)  # traces at the typical mid level
        items = postings * AVG_COVER * avg_psi
        return items * _bits_per_item(config.ab_fp_rate) / 8 + 16

    def _db_filter_bytes(self, postings, l):
        config = self.system.config
        items = postings * (l + 1)
        return items * _bits_per_item(config.db_fp_rate) / 8 + 16

    def _estimate_ab(self, component, stats):
        """Top-down AB pass: root ships full, children get reduced."""
        total = 0.0
        reduced_docs = {}
        for node in component.nodes():
            stat = stats[node.node_id]
            if node.parent is None:
                total += stat.wire_bytes  # unfiltered root list
                total += self._ab_filter_bytes(stat.postings) * len(node.children)
                reduced_docs[node.node_id] = stat.documents
                continue
            parent_docs = reduced_docs[node.parent.node_id]
            survival = self._survival(parent_docs, stat.documents)
            kept_postings = stat.postings * survival
            kept_docs = min(stat.documents, parent_docs)
            total += kept_postings * POSTING_BYTES
            total += self._ab_filter_bytes(kept_postings) * len(node.children)
            reduced_docs[node.node_id] = kept_docs
        return total

    def _estimate_db(self, component, stats):
        """Bottom-up DB pass: leaves ship full, inner nodes get reduced."""
        total = 0.0
        l = self._domain_level(stats)

        def visit(node):
            stat = stats[node.node_id]
            postings, docs = stat.postings, stat.documents
            for child in node.children:
                child_postings, child_docs = visit(child)
                nonlocal total
                total += self._db_filter_bytes(child_postings, l)
                postings *= self._survival_db(child_postings, postings)
                docs = min(docs, child_docs)
            total += postings * POSTING_BYTES
            return postings, docs

        visit(component.root)
        return total

    def _estimate_subquery(self, component, stats):
        """DB reduction along the path through the rarest leaf only."""
        leaves = [n for n in component.nodes() if n.is_leaf]
        pivot = min(leaves, key=lambda n: stats[n.node_id].documents)
        path_ids = set()
        node = pivot
        while node is not None:
            path_ids.add(node.node_id)
            node = node.parent
        total = 0.0
        # off-path lists ship entire
        for node in component.nodes():
            if node.node_id not in path_ids:
                total += stats[node.node_id].wire_bytes
        # on-path: DB chain from the pivot upward
        l = self._domain_level(stats)
        postings = stats[pivot.node_id].postings
        total += postings * POSTING_BYTES
        node = pivot.parent
        while node is not None:
            total += self._db_filter_bytes(postings, l)
            stat = stats[node.node_id]
            postings = stat.postings * self._survival_db(postings, stat.postings)
            total += postings * POSTING_BYTES
            node = node.parent
        return total

    # -- decision ---------------------------------------------------------------------

    def estimate_all(self, component, stats):
        baseline = sum(
            stats[n.node_id].wire_bytes for n in component.nodes()
        )
        estimates = {
            "baseline": baseline,
            "ab": self._estimate_ab(component, stats),
            "db": self._estimate_db(component, stats),
            "subquery": self._estimate_subquery(component, stats),
        }
        # the hybrid pays both filter sets; approximate as db's postings
        # with ab+db filter overheads
        estimates["bloom"] = (
            estimates["db"]
            + sum(
                self._ab_filter_bytes(stats[n.node_id].postings)
                for n in component.nodes()
                if n.children
            )
        )
        return estimates

    def choose(self, component, src_peer):
        """Pick the strategy with the lowest estimated traffic."""
        if len(component) == 1:
            return Choice("baseline", {"baseline": 0.0})
        stats, stats_time = self.gather_stats(component, src_peer)
        if any(s.postings == 0 for s in stats.values()):
            # some list is empty: the join is empty, nothing to optimize
            return Choice("baseline", {"baseline": 0.0}, stats_time)
        estimates = self.estimate_all(component, stats)
        strategy = min(estimates, key=lambda k: (estimates[k], k))
        return Choice(strategy, estimates, stats_time)
