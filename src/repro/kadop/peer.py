"""One KadoP peer: document storage plus its DHT presence.

XML documents are stored at their publishing peer; only the ``Term``
relation is spread over the DHT.  A peer therefore owns (a) its parsed
documents, and (b) whatever slice of the distributed index the DHT assigns
to its node.
"""

from repro.query.matcher import match_document, match_to_postings
from repro.xmldata.parser import parse_document


class KadopPeer:
    """A peer of the KadoP network."""

    def __init__(self, system, index, node):
        self.system = system
        self.index = index  # the integer p of the Peer relation
        self.node = node  # DhtNode
        self.documents = {}  # doc_index -> Document
        self.functional_docs = set()  # doc indexes holding function results
        self._next_doc = 0

    @property
    def uri(self):
        return self.node.uri

    # -- publishing ----------------------------------------------------------

    def publish(self, xml_text, uri=None, resolver=None, inline=False, doc_type=None):
        """Parse and index an XML document; returns a PublishReceipt.

        ``resolver``/``inline`` control entity includes, see
        :func:`repro.xmldata.parser.parse_document`; ``doc_type`` overrides
        the inferred document type (Section 4.1)."""
        resolver = resolver or self.system.resolver
        document = parse_document(
            xml_text, uri=uri, resolver=resolver, inline=inline, doc_type=doc_type
        )
        return self.publish_document(document)

    def publish_document(self, document):
        """Index an already parsed document owned by this peer."""
        doc_index = self._next_doc
        self._next_doc += 1
        self.documents[doc_index] = document
        receipt = self.system.publisher.publish(
            self.node, document, self.index, doc_index
        )
        self.system.catalog.register_doc(
            self.node, self.index, doc_index, document.uri or ""
        )
        if document.is_intensional:
            self.system.fundex_register(self, doc_index, document)
        if self.system.views is not None:
            self.system.views.on_publish(self, doc_index, document)
        return receipt

    def publish_batch(self, xml_texts, uris=None, resolver=None, doc_type=None):
        """Parse and bulk-index a batch of XML documents.

        The batch goes through :meth:`Publisher.publish_many`, which
        buffers postings per destination key across every document before
        touching the DHT — one amortized locate plus one batched transfer
        per key per round instead of one routed append per document.  The
        resulting index state (and therefore every query answer) is
        identical to publishing the documents one at a time; returns the
        merged :class:`~repro.index.publisher.PublishReceipt`.
        """
        resolver = resolver or self.system.resolver
        parsed = []
        for i, xml_text in enumerate(xml_texts):
            uri = uris[i] if uris is not None else None
            document = parse_document(
                xml_text, uri=uri, resolver=resolver, doc_type=doc_type
            )
            doc_index = self._next_doc
            self._next_doc += 1
            self.documents[doc_index] = document
            parsed.append((document, self.index, doc_index))
        receipt = self.system.publisher.publish_many(self.node, parsed)
        for document, _, doc_index in parsed:
            self.system.catalog.register_doc(
                self.node, self.index, doc_index, document.uri or ""
            )
            if document.is_intensional:
                self.system.fundex_register(self, doc_index, document)
            if self.system.views is not None:
                self.system.views.on_publish(self, doc_index, document)
        return receipt

    def unpublish(self, doc_index):
        """Withdraw a document: delete its postings from the index.

        Section 2: "a document modification is interpreted as deletion
        followed by insertion".  Returns the number of postings removed.
        """
        from repro.index.publisher import extract_postings

        document = self.documents.pop(doc_index, None)
        if document is None:
            raise KeyError("peer %d has no document %d" % (self.index, doc_index))
        if self.system.views is not None:
            self.system.views.on_unpublish(self, doc_index, document)
        publisher = self.system.publisher
        extracted = extract_postings(
            document,
            self.index,
            doc_index,
            granularity=publisher.granularity,
            word_labels=publisher.word_labels,
        )
        removed = 0
        net = self.system.net
        dpp = self.system.dpp
        for term_key in sorted(extracted):
            postings = extracted[term_key]
            if dpp is not None:
                count, _ = dpp.delete(self.node, term_key, postings)
                removed += count
            else:
                for posting in postings:
                    ok, _ = net.delete(self.node, term_key, posting)
                    removed += bool(ok)
        return removed

    def republish(self, doc_index, xml_text, uri=None, resolver=None, inline=False):
        """Modify a document: delete + insert, as in the paper.

        The new content receives a fresh document index (structural ids
        are not incrementally updatable)."""
        self.unpublish(doc_index)
        return self.publish(xml_text, uri=uri, resolver=resolver, inline=inline)

    # -- the document phase of query processing --------------------------------

    def evaluate(self, pattern, doc_index, allow_incomplete=False):
        """Evaluate ``pattern`` on one owned document.

        Returns a list of ``(bindings, incomplete_ids)`` pairs with
        bindings as ``node_id → Posting`` (this is what is shipped back to
        the query peer)."""
        document = self.documents[doc_index]
        results = []
        for match in match_document(
            pattern, document, allow_incomplete=allow_incomplete
        ):
            postings = match_to_postings(match, self.index, doc_index)
            results.append((postings, match.incomplete))
        return results

    def __repr__(self):
        return "KadopPeer(%d, %d docs)" % (self.index, len(self.documents))
