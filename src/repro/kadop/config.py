"""System configuration: every technique of the paper is a toggle here.

The defaults correspond to the *improved* KadoP of Section 3 (B+-tree
store, ``append``, pipelined ``get``) without the optional techniques; the
experiment drivers flip individual switches to reproduce each comparison.
"""

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.sim.cost import CostParams


@dataclass
class KadopConfig:
    """Tunable knobs of a KadoP deployment.

    Section 3 (base system):

    ``store``            ``"btree"`` (BerkeleyDB replacement) or ``"naive"``
                         (PAST-style read-modify-write store)
    ``store_backend``    authoritative per-peer store selector:
                         ``"btree"``, ``"naive"``, or ``"lsm"`` (memtable +
                         sorted immutable runs with background compaction on
                         the serving clock).  ``None`` (the default) resolves
                         to ``store``, which keeps old configs and
                         checkpoints working; when both are given they must
                         agree unless ``store_backend`` is ``"lsm"``.
                         Query answers are byte-identical across backends —
                         only the store-time accounting differs
    ``use_append``       use the extended ``append`` API instead of ``put``
    ``pipelined_get``    stream posting lists instead of blocking ``get``
    ``chunk_postings``   pipeline chunk size, in postings

    Section 8 (index-size reductions; both trade query quality for space):

    ``index_granularity``  ``"element"`` (default) or ``"document"`` —
                           coarse indexing records only (p, d) per term,
                           making index queries imprecise but complete
    ``word_index_labels``  if set, words are indexed only under elements
                           with these labels (selective word indexing;
                           queries for words elsewhere lose completeness)

    Section 4 (DPP):

    ``use_dpp``              partition long posting lists across peers
    ``dpp_block_entries``    data-block capacity before a split
    ``parallelism``          K, the maximum degree of parallel block fetches
    ``dpp_ordered_splits``   False scatters split blocks randomly instead of
                             by range (the ablation the paper mentions)
    ``dpp_replicate_after``  popularity threshold (block fetch count) that
                             triggers per-block replication; None disables
    ``dpp_replica_copies``   extra copies per popular block
    ``dpp_fetch_mode``       how the executor retrieves DPP blocks:
                             ``"eager"`` fetches every block of every term;
                             ``"window"`` applies the paper's single global
                             ``[min, max]`` document window; ``"lazy"``
                             (default) adds zone-map pruning and fetches
                             blocks on demand as the block-granular join
                             reaches their range

    Section 5 (Structural Bloom Filters):

    ``filter_strategy``      ``None``/``"ab"``/``"db"``/``"bloom"``/``"subquery"``,
                             ``"auto"`` (cost-based optimizer), or
                             ``"pushdown"`` (ship small lists to the longest
                             list's peer and join there — Section 4.2)
    ``ab_fp_rate``           target basic false-positive rate of AB filters
    ``db_fp_rate``           target basic false-positive rate of DB filters
    ``psi_c``                the c of ψ(j) = ceil(1 + j/c)

    Section 4.2 optimizations:

    ``striped_replica_fetch``  stripe long posting-list transfers across the
                               DHT's replicas ("transferring fragments from
                               different copies")

    Materialized views (:mod:`repro.views` — the caching layer Section 8
    gestures at with "reusing previously computed results"):

    ``use_views``                    consult the view rewriter before the
                                     index phase
    ``view_block_entries``           answer-block capacity before a split
    ``view_auto_materialize_after``  popularity threshold (queries of one
                                     canonical pattern) that triggers
                                     auto-materialization; None disables
    ``view_cost_based``              compare the view's stored bytes with
                                     the optimizer's base-index estimate
                                     and only serve from the view when it
                                     is cheaper (False forces view use)

    Kernel backend (:mod:`repro.postings.kernels`):

    ``kernel_backend``   ``"auto"`` (numpy when importable, else pure),
                         ``"pure"``, or ``"numpy"`` — which vectorized
                         kernel implementation the posting/Bloom hot
                         paths use.  Results are byte-identical either
                         way; the ``REPRO_KERNELS`` environment variable
                         overrides this knob

    DHT:

    ``replication``      copies per key (fixed factor, set at network start)
    ``leaf_size``        Pastry leaf-set size / Chord successor-list length
    ``overlay``          ``"pastry"`` (the paper's PAST substrate) or
                         ``"chord"`` — the techniques only assume the
                         generic DHT interface of Section 2
    ``cost``             the calibrated :class:`CostParams`

    Concurrent serving (:mod:`repro.kadop.serving` — only consulted by
    :meth:`KadopNetwork.serve`; single-query runs ignore these):

    ``max_inflight``        admission-control bound on concurrently
                            executing queries; None admits every query the
                            instant it arrives (no queue)
    ``admission_policy``    ``"fifo"`` (arrival order) or ``"fair"``
                            (fair share per source peer: the source with
                            the fewest admitted queries goes first)
    ``coalesce_fetches``    single-flight coalescing — concurrent queries
                            demanding the same term key / DPP block / view
                            block share one in-flight fetch

    Load balancing (:mod:`repro.balance` — the adaptive-redistribution
    layer; all defaults leave the balancer purely observational, so
    answers and receipts are byte-identical to the pre-balance path):

    ``read_policy``            how gets pick their serving replica:
                               ``"owner"`` (always the routed owner, the
                               original behaviour), ``"round_robin"``
                               (rotate over provably-fresh copies), or
                               ``"least_loaded"`` (coldest fresh copy by
                               the ledger's decayed byte rate)
    ``hot_key_threshold``      decayed read-byte rate above which a key
                               gets extra copies on cold peers beyond
                               ``replication``; None disables promotion
    ``hot_key_copies``         extra copies per hot key
    ``hot_key_decay``          per-tick multiplier of the ledger's rates
                               (rates halve per quiet tick at the 0.5
                               default; promotion exits at half the entry
                               threshold)
    ``rebalance_interval_s``   simulated seconds between balance ticks of
                               the serving engine (decay + demotion + one
                               rebalancer pass); None disables the clock
    ``rebalance_overload``     a peer is overloaded when its decayed load
                               exceeds this multiple of the mean
    ``rebalance_max_keys``     alias groups migrated off one overloaded
                               peer per pass

    Fault tolerance (:mod:`repro.faults` — only observable when a
    FaultPlan is installed; all-zero-fault runs are byte-identical to the
    pre-fault code path):

    ``op_timeout_s``        simulated seconds a sender waits before
                            declaring a message lost
    ``op_max_retries``      resends per op/replica before
                            :class:`~repro.faults.OpTimeoutError`
    ``retry_backoff_s``     base of the capped exponential backoff
    ``retry_backoff_cap_s`` backoff ceiling
    ``write_quorum``        ``"all"`` (every replica must ack, the
                            original semantics) or ``"majority"``
                            (ack-on-quorum; stragglers are caught up by
                            anti-entropy repair)
    """

    store: str = "btree"
    store_backend: str = None
    use_append: bool = True
    pipelined_get: bool = True
    chunk_postings: int = 2048
    index_granularity: str = "element"
    word_index_labels: frozenset = None

    use_dpp: bool = False
    dpp_block_entries: int = 1000
    parallelism: int = 8
    dpp_ordered_splits: bool = True
    dpp_replicate_after: int = None
    dpp_replica_copies: int = 1
    dpp_fetch_mode: str = "lazy"

    filter_strategy: str = None
    ab_fp_rate: float = 0.20
    db_fp_rate: float = 0.01
    psi_c: int = 4

    striped_replica_fetch: bool = False

    kernel_backend: str = "auto"

    use_views: bool = False
    view_block_entries: int = 512
    view_auto_materialize_after: int = None
    view_cost_based: bool = True

    replication: int = 2
    leaf_size: int = 8
    overlay: str = "pastry"
    cost: CostParams = field(default_factory=CostParams)

    max_inflight: int = None
    admission_policy: str = "fifo"
    coalesce_fetches: bool = True

    read_policy: str = "owner"
    hot_key_threshold: int = None
    hot_key_copies: int = 1
    hot_key_decay: float = 0.5
    rebalance_interval_s: float = None
    rebalance_overload: float = 2.0
    rebalance_max_keys: int = 2

    op_timeout_s: float = 0.25
    op_max_retries: int = 6
    retry_backoff_s: float = 0.05
    retry_backoff_cap_s: float = 1.0
    write_quorum: str = "all"

    def __post_init__(self):
        if self.overlay not in ("pastry", "chord"):
            raise ConfigError("overlay must be 'pastry' or 'chord'")
        if self.index_granularity not in ("element", "document"):
            raise ConfigError(
                "index_granularity must be 'element' or 'document'"
            )
        if self.store not in ("btree", "naive"):
            raise ConfigError("store must be 'btree' or 'naive', got %r" % self.store)
        if self.store_backend is None:
            # resolved once here so checkpoints round-trip the effective
            # backend; ``store`` remains the legacy two-way spelling
            self.store_backend = self.store
        if self.store_backend not in ("btree", "naive", "lsm"):
            raise ConfigError(
                "store_backend must be 'btree', 'naive', or 'lsm', got %r"
                % (self.store_backend,)
            )
        if self.filter_strategy not in (
            None, "ab", "db", "bloom", "subquery", "auto", "pushdown"
        ):
            raise ConfigError("unknown filter strategy %r" % self.filter_strategy)
        if self.parallelism < 1:
            raise ConfigError("parallelism must be >= 1")
        if self.kernel_backend not in ("auto", "pure", "numpy"):
            raise ConfigError(
                "kernel_backend must be 'auto', 'pure', or 'numpy', got %r"
                % (self.kernel_backend,)
            )
        if self.dpp_fetch_mode not in ("eager", "window", "lazy"):
            raise ConfigError(
                "dpp_fetch_mode must be 'eager', 'window', or 'lazy', got %r"
                % (self.dpp_fetch_mode,)
            )
        if self.view_block_entries < 1:
            raise ConfigError("view_block_entries must be >= 1")
        if (
            self.view_auto_materialize_after is not None
            and self.view_auto_materialize_after < 1
        ):
            raise ConfigError("view_auto_materialize_after must be >= 1 or None")
        if self.chunk_postings < 1:
            raise ConfigError("chunk_postings must be >= 1")
        if not 0 < self.ab_fp_rate < 1 or not 0 < self.db_fp_rate < 1:
            raise ConfigError("filter fp rates must be in (0, 1)")
        if self.write_quorum not in ("all", "majority"):
            raise ConfigError(
                "write_quorum must be 'all' or 'majority', got %r"
                % (self.write_quorum,)
            )
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ConfigError("max_inflight must be >= 1 or None")
        if self.admission_policy not in ("fifo", "fair"):
            raise ConfigError(
                "admission_policy must be 'fifo' or 'fair', got %r"
                % (self.admission_policy,)
            )
        if self.read_policy not in ("owner", "round_robin", "least_loaded"):
            raise ConfigError(
                "read_policy must be 'owner', 'round_robin', or "
                "'least_loaded', got %r" % (self.read_policy,)
            )
        if self.hot_key_threshold is not None and self.hot_key_threshold < 1:
            raise ConfigError("hot_key_threshold must be >= 1 or None")
        if self.hot_key_copies < 1:
            raise ConfigError("hot_key_copies must be >= 1")
        if not 0.0 <= self.hot_key_decay < 1.0:
            raise ConfigError("hot_key_decay must be in [0, 1)")
        if (
            self.rebalance_interval_s is not None
            and self.rebalance_interval_s <= 0
        ):
            raise ConfigError("rebalance_interval_s must be > 0 or None")
        if self.rebalance_overload <= 1.0:
            raise ConfigError("rebalance_overload must be > 1")
        if self.rebalance_max_keys < 1:
            raise ConfigError("rebalance_max_keys must be >= 1")
        if self.op_max_retries < 0:
            raise ConfigError("op_max_retries must be >= 0")
        if (
            self.op_timeout_s < 0
            or self.retry_backoff_s < 0
            or self.retry_backoff_cap_s < 0
        ):
            raise ConfigError("timeout/backoff durations must be >= 0")
        if self.store == "naive" and self.use_append:
            # the naive store has no real append; calling it is allowed but
            # degenerates to put — make the intent explicit in experiments
            pass
