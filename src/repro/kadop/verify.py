"""Recall/precision verification against a centralized oracle.

The paper's guarantees — index queries are *complete* (never miss an
answer) and, without wildcards/stop words, *precise* — are the invariants
every optimization must preserve.  This module checks them for a live
network: it evaluates a query centrally over every (alive) document and
compares with the distributed answer, reporting missing and spurious
tuples.  Useful as a deployment diagnostic and used by the test suite.
"""

from dataclasses import dataclass, field

from repro.query.matcher import match_document, match_to_postings


@dataclass
class VerificationReport:
    """Outcome of one verification run."""

    query: str
    distributed: int = 0
    expected: int = 0
    missing: list = field(default_factory=list)
    spurious: list = field(default_factory=list)
    candidate_docs: int = 0
    true_docs: int = 0

    @property
    def recall_ok(self):
        return not self.missing

    @property
    def exact(self):
        return not self.missing and not self.spurious

    @property
    def index_precision(self):
        """Fraction of contacted candidate documents that held answers."""
        if not self.candidate_docs:
            return 1.0
        return self.true_docs / self.candidate_docs

    def __repr__(self):
        status = "exact" if self.exact else (
            "complete-imprecise" if self.recall_ok else "INCOMPLETE"
        )
        return "VerificationReport(%r: %s, %d answers)" % (
            self.query,
            status,
            self.distributed,
        )


def oracle_answers(system, pattern):
    """Centralized ground truth over every alive peer's documents."""
    expected = set()
    for peer in system.peers:
        if not peer.node.alive:
            continue
        for doc_index, document in peer.documents.items():
            if doc_index in peer.functional_docs:
                continue
            for match in match_document(pattern, document):
                expected.add(
                    tuple(
                        sorted(
                            match_to_postings(match, peer.index, doc_index).items()
                        )
                    )
                )
    return expected


def verify_query(system, query_text, keyword_steps=(), strategy=None, peer=None):
    """Run ``query_text`` distributed and centrally; compare.

    Returns a :class:`VerificationReport`; ``report.recall_ok`` is the
    paper's completeness guarantee, ``report.exact`` adds answer-level
    precision."""
    pattern = system.parse(query_text, keyword_steps=keyword_steps)
    answers, exec_report = system.executor.run(
        pattern, peer or system.peers[0], strategy=strategy
    )
    got = {a.bindings for a in answers}
    expected = oracle_answers(system, pattern)
    report = VerificationReport(
        query=query_text,
        distributed=len(got),
        expected=len(expected),
        missing=sorted(expected - got),
        spurious=sorted(got - expected),
        candidate_docs=exec_report.candidate_docs,
        true_docs=len({(b[0][1].peer, b[0][1].doc) for b in expected})
        if expected
        else 0,
    )
    return report


def verify_workload(system, workload, strategy=None):
    """Verify a list of ``(query, keyword_steps)``; returns all reports."""
    return [
        verify_query(system, query, keyword_steps=keywords, strategy=strategy)
        for query, keywords in workload
    ]
