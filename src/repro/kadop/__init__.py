"""The KadoP system: peers, publishing, and distributed query processing.

:class:`~repro.kadop.system.KadopNetwork` wires together the DHT, the
local stores, the publisher, the DPP, the Bloom reducers and the Fundex
according to a :class:`~repro.kadop.config.KadopConfig`, and exposes the
two user-facing operations of the paper: *publish* an XML document and
*query* the collection with a tree pattern.
"""

from repro.kadop.config import KadopConfig
from repro.kadop.peer import KadopPeer
from repro.kadop.system import KadopNetwork
from repro.kadop.execution import Answer, QueryReport

__all__ = ["KadopConfig", "KadopPeer", "KadopNetwork", "Answer", "QueryReport"]
