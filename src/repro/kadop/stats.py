"""Network introspection: index sizes, load balance, hot terms.

Section 8 lists load balancing among the optimizer's future targets; the
prerequisite is visibility into how the DHT spread the index.  This module
computes per-peer and per-term statistics over a live network — the same
numbers an operator (or the future load balancer) would need.
"""

from dataclasses import asdict, dataclass, field

from repro.postings.encoder import encoded_size


@dataclass
class PeerLoad:
    """One peer's share of the distributed index."""

    peer_index: int
    postings: int = 0
    terms: int = 0
    documents: int = 0
    objects: int = 0
    view_blocks: int = 0  # materialized-view answer blocks held here
    view_bytes: int = 0  # encoded bytes of those blocks


@dataclass
class NetworkStats:
    """Aggregate index statistics for a KadoP network."""

    peers: list = field(default_factory=list)  # PeerLoad, by peer index
    total_postings: int = 0
    total_terms: int = 0
    hottest_terms: list = field(default_factory=list)  # (count, term)
    views: int = 0  # materialized views in the catalog
    view_hits: int = 0
    view_misses: int = 0
    view_bytes: int = 0  # total view-block storage
    # load-ledger views (repro.balance): empty when nothing was metered
    hot_keys: list = field(default_factory=list)  # (read_bytes, key)
    hot_peers: list = field(default_factory=list)  # (read_bytes, peer)
    balance: dict = field(default_factory=dict)  # LoadBalancer.summary()
    kernel_backend: str = ""  # active repro.postings.kernels backend
    store_backend: str = ""  # per-peer store implementation in use
    # LSM internals (zero unless store_backend == "lsm"): frozen runs
    # across peers, buffered memtable postings, and compaction folds
    lsm_runs: int = 0
    lsm_memtable_postings: int = 0
    lsm_compactions: int = 0

    @property
    def gini(self):
        """Gini coefficient of per-peer posting counts (0 = perfectly even).

        The standard load-imbalance summary: the DHT hashes terms, so the
        load is uneven exactly to the extent posting lists are skewed —
        which DBLP's are, heavily (Section 4.3)."""
        loads = sorted(p.postings for p in self.peers)
        n = len(loads)
        total = sum(loads)
        if n == 0 or total == 0:
            return 0.0
        cum = 0.0
        for i, load in enumerate(loads, start=1):
            cum += i * load
        return (2 * cum) / (n * total) - (n + 1) / n

    @property
    def max_over_mean(self):
        """Peak-to-average posting load (1.0 = perfectly even)."""
        loads = [p.postings for p in self.peers]
        if not loads or not sum(loads):
            return 1.0
        return max(loads) / (sum(loads) / len(loads))

    def format(self):
        lines = [
            "peers: %d   postings: %d   distinct terms: %d"
            % (len(self.peers), self.total_postings, self.total_terms),
            "load balance: gini=%.3f  max/mean=%.2f"
            % (self.gini, self.max_over_mean),
            "hottest terms:",
        ]
        if self.kernel_backend:
            lines.insert(1, "kernel backend: %s" % self.kernel_backend)
        if self.store_backend:
            line = "store backend: %s" % self.store_backend
            if self.store_backend == "lsm":
                line += "  (runs: %d  memtable postings: %d  compactions: %d)" % (
                    self.lsm_runs,
                    self.lsm_memtable_postings,
                    self.lsm_compactions,
                )
            lines.insert(1, line)
        for count, term in self.hottest_terms:
            lines.append("  %8d  %s" % (count, term))
        if self.hot_keys or self.hot_peers:
            lines.append("hottest peers by served read bytes:")
            for nbytes, peer in self.hot_peers:
                lines.append("  %10d  peer %d" % (nbytes, peer))
            lines.append("hottest keys by served read bytes:")
            for nbytes, key in self.hot_keys:
                lines.append("  %10d  %s" % (nbytes, key))
        if self.balance:
            lines.append(
                "balancing: policy=%s  fanout reads: %d  hot keys: %d "
                "(+%d copies)  promotions/demotions: %d/%d  migrations: %d "
                "(%d keys, %d bytes)"
                % (
                    self.balance.get("read_policy"),
                    self.balance.get("fanout_reads", 0),
                    self.balance.get("hot_keys", 0),
                    self.balance.get("extra_copies", 0),
                    self.balance.get("promotions", 0),
                    self.balance.get("demotions", 0),
                    self.balance.get("migrations", 0),
                    self.balance.get("keys_moved", 0),
                    self.balance.get("bytes_moved", 0),
                )
            )
        if self.views or self.view_hits or self.view_misses:
            served = self.view_hits + self.view_misses
            rate = self.view_hits / served if served else 0.0
            lines.append(
                "views: %d materialized   %d bytes stored   hits/misses: %d/%d"
                " (%.0f%% hit rate)"
                % (
                    self.views,
                    self.view_bytes,
                    self.view_hits,
                    self.view_misses,
                    100.0 * rate,
                )
            )
        return "\n".join(lines)

    def to_dict(self):
        """A JSON-ready dict of every field plus the derived summaries."""
        data = asdict(self)
        data["peers"] = [asdict(p) for p in self.peers]
        data["hottest_terms"] = [
            {"count": count, "term": term} for count, term in self.hottest_terms
        ]
        data["hot_keys"] = [
            {"read_bytes": nbytes, "key": key} for nbytes, key in self.hot_keys
        ]
        data["hot_peers"] = [
            {"read_bytes": nbytes, "peer": peer}
            for nbytes, peer in self.hot_peers
        ]
        data["gini"] = self.gini
        data["max_over_mean"] = self.max_over_mean
        return data

    def to_registry(self, registry):
        """Feed these statistics into a :class:`repro.obs.MetricsRegistry`.

        Aggregates become gauges; per-peer loads become labelled gauges so
        ``registry.to_json()`` carries the full load-balance picture."""
        registry.gauge("network_peers").set(len(self.peers))
        registry.gauge("network_postings_total").set(self.total_postings)
        registry.gauge("network_terms_total").set(self.total_terms)
        registry.gauge("network_load_gini").set(self.gini)
        registry.gauge("network_load_max_over_mean").set(self.max_over_mean)
        registry.gauge("views_materialized").set(self.views)
        registry.gauge("views_hits").set(self.view_hits)
        registry.gauge("views_misses").set(self.view_misses)
        registry.gauge("views_bytes").set(self.view_bytes)
        if self.balance:
            registry.gauge("balance_fanout_reads").set(
                self.balance.get("fanout_reads", 0)
            )
            registry.gauge("balance_hot_keys").set(
                self.balance.get("hot_keys", 0)
            )
            registry.gauge("balance_extra_copies").set(
                self.balance.get("extra_copies", 0)
            )
            registry.gauge("balance_migrations").set(
                self.balance.get("migrations", 0)
            )
        for nbytes, peer in self.hot_peers:
            registry.gauge("peer_read_bytes", peer=peer).set(nbytes)
        for load in self.peers:
            registry.gauge("peer_postings", peer=load.peer_index).set(
                load.postings
            )
            registry.gauge("peer_terms", peer=load.peer_index).set(load.terms)
            registry.gauge("peer_documents", peer=load.peer_index).set(
                load.documents
            )
        return registry


def serving_summary(result, slo=None):
    """Operator-style text summary of a
    :class:`~repro.kadop.serving.ServingResult`.

    One block with throughput, the latency percentiles, admission queue
    behaviour, single-flight coalescing savings, and the per-source-peer
    admission split (the number the ``fair`` policy equalizes).  Passing
    the run's :class:`~repro.obs.slo.SLOTracker` appends its compliance
    and error-budget line."""
    lines = [
        "served %d queries in %.3fs simulated  (%.2f q/s)"
        % (len(result.queries), result.makespan_s, result.throughput_qps),
        "latency: p50=%.4fs  p95=%.4fs  p99=%.4fs"
        % (result.percentile(50), result.percentile(95), result.percentile(99)),
        "admission: max_inflight=%s policy=%s  mean queue wait %.4fs"
        % (
            "unbounded" if result.max_inflight is None else result.max_inflight,
            result.policy,
            result.mean_queue_wait_s,
        ),
        "traffic: %d bytes"
        % (result.total_bytes,)
        + (
            "  (coalescing: %d joined flights, %d bytes not re-fetched)"
            % (result.coalesced_hits, result.coalesced_bytes_saved)
            if result.coalesce
            else "  (coalescing off)"
        ),
    ]
    per_src = {}
    for query in result.queries:
        per_src[query.src] = per_src.get(query.src, 0) + 1
    lines.append(
        "sources: "
        + "  ".join(
            "peer %d: %d" % (src, count) for src, count in sorted(per_src.items())
        )
    )
    if slo is not None:
        lines.append(
            "slo: %s  p%d<=%.3fs  %d/%d breaches  compliance %.4f  "
            "budget spent %.2fx"
            % (
                "OK" if slo.breaches == 0 else "BREACHED",
                round(slo.target * 100),
                slo.objective_s,
                slo.breaches,
                slo.total,
                slo.compliance,
                slo.budget_spent,
            )
        )
    return "\n".join(lines)


def network_stats(system, top_terms=8):
    """Collect :class:`NetworkStats` for a live network."""
    from repro.postings import kernels

    stats = NetworkStats(
        kernel_backend=kernels.backend_name(),
        store_backend=getattr(system.config, "store_backend", "") or "",
    )
    term_counts = {}
    for peer in system.peers:
        if not peer.node.alive:
            continue
        load = PeerLoad(peer_index=peer.index)
        store = peer.node.store
        stats.lsm_runs += getattr(store, "num_runs", 0)
        stats.lsm_memtable_postings += getattr(store, "memtable_entries", 0)
        stats.lsm_compactions += getattr(store, "compactions", 0)
        for term in store.terms():
            if term.startswith("viewblk:"):
                # view answer blocks are cache, not index: tallied apart
                load.view_blocks += 1
                load.view_bytes += encoded_size(store.get(term))
                continue
            count = store.count(term)
            load.postings += count
            load.terms += 1
            # aggregate only primary copies: owner-held keys
            if system.net.owner_of(term) is peer.node:
                term_counts[term] = term_counts.get(term, 0) + count
        load.documents = len(peer.documents)
        load.objects = len(peer.node.objects)
        stats.peers.append(load)
        stats.total_postings += load.postings
    stats.total_terms = len(term_counts)
    stats.hottest_terms = sorted(
        ((count, term) for term, count in term_counts.items()), reverse=True
    )[:top_terms]
    balance = getattr(system, "balance", None)
    if balance is not None:
        ledger = balance.ledger
        if ledger.total_reads or ledger.total_writes:
            stats.hot_keys = ledger.hottest_keys(top_terms)
            stats.hot_peers = ledger.hottest_peers(top_terms)
            stats.balance = balance.summary()
    views = getattr(system, "views", None)
    if views is not None:
        stats.view_hits = views.hits
        stats.view_misses = views.misses
        stats.views = sum(
            1 for v in views.catalog().values() if v.materialized
        )
        stats.view_bytes = sum(load.view_bytes for load in stats.peers)
    return stats
