"""The KadoP network facade.

Wires the substrates together according to a
:class:`~repro.kadop.config.KadopConfig` and exposes publish/query.

>>> from repro.kadop.system import KadopNetwork
>>> net = KadopNetwork.create(num_peers=4)
>>> _ = net.peers[0].publish("<a><b>x y</b></a>", uri="u:1")
>>> [a.doc_id for a in net.query("//a//b")]
[(0, 0)]
"""

from repro.bloom.reducers import BloomReducers
from repro.dht.network import DhtNetwork
from repro.faults import RetryPolicy
from repro.fundex.index import FundexIndex
from repro.index.catalog import Catalog
from repro.index.dpp import DppIndex
from repro.index.publisher import Publisher
from repro.kadop.config import KadopConfig
from repro.kadop.execution import QueryExecutor
from repro.kadop.peer import KadopPeer
from repro.query.xpath import parse_query
from repro.sim.cost import CostModel
from repro.storage.clustered import ClusteredIndexStore
from repro.storage.lsm import LsmStore
from repro.storage.naive_store import NaiveGzipStore


class KadopNetwork:
    """A deployment of KadoP peers over one DHT ring."""

    def __init__(self, config=None):
        self.config = config or KadopConfig()
        from repro.postings import kernels

        kernels.apply_config(self.config.kernel_backend)
        store_factory = {
            "btree": ClusteredIndexStore,
            "naive": NaiveGzipStore,
            "lsm": LsmStore,
        }[self.config.store_backend]
        self.net = DhtNetwork(
            cost=CostModel(self.config.cost),
            replication=self.config.replication,
            leaf_size=self.config.leaf_size,
            overlay=self.config.overlay,
        )
        self.net.retry = RetryPolicy(
            timeout_s=self.config.op_timeout_s,
            max_retries=self.config.op_max_retries,
            backoff_s=self.config.retry_backoff_s,
            backoff_cap_s=self.config.retry_backoff_cap_s,
        )
        self.net.write_quorum = self.config.write_quorum
        from repro.balance import LoadBalancer

        self.balance = LoadBalancer(
            self.net,
            read_policy=self.config.read_policy,
            hot_key_threshold=self.config.hot_key_threshold,
            hot_key_copies=self.config.hot_key_copies,
            decay=self.config.hot_key_decay,
            rebalance_interval_s=self.config.rebalance_interval_s,
            rebalance_overload=self.config.rebalance_overload,
            rebalance_max_keys=self.config.rebalance_max_keys,
        )
        self.net.balancer = self.balance
        self._store_factory = store_factory
        self.catalog = Catalog(self.net)
        self.dpp = (
            DppIndex(
                self.net,
                max_block_entries=self.config.dpp_block_entries,
                ordered_splits=self.config.dpp_ordered_splits,
                replicate_after=self.config.dpp_replicate_after,
                replica_copies=self.config.dpp_replica_copies,
            )
            if self.config.use_dpp
            else None
        )
        self.publisher = Publisher(
            self.net,
            dpp=self.dpp,
            use_append=self.config.use_append,
            granularity=self.config.index_granularity,
            word_labels=self.config.word_index_labels,
        )
        self.reducers = BloomReducers(self)
        from repro.kadop.optimizer import StrategyOptimizer

        self.optimizer = StrategyOptimizer(self)
        self.fundex = FundexIndex(self)
        self.executor = QueryExecutor(self)
        from repro.views.manager import ViewManager

        self.views = ViewManager(self) if self.config.use_views else None
        self.peers = []
        self._resources = {}  # uri -> xml text (the "web" of includable data)
        self.tracer = None  # repro.obs.Tracer, via enable_tracing
        self.metrics = None  # repro.obs.MetricsRegistry, via enable_tracing
        self.telemetry = None  # repro.obs.TelemetrySampler, via enable_telemetry

    # -- construction ----------------------------------------------------------

    @classmethod
    def create(cls, num_peers, config=None, seed=0):
        """Build a network of ``num_peers`` fresh peers.

        ``seed`` varies peer URIs (hence node placement) across runs."""
        system = cls(config)
        for i in range(num_peers):
            uri = "kadop://s%d/p%d" % (seed, i)
            node = system.net.add_node(uri, system._store_factory(), rebuild=False)
            system.peers.append(KadopPeer(system, len(system.peers), node))
        system.net._rebuild_routing()
        for peer in system.peers:
            system.catalog.register_peer(peer.node, peer.index, peer.uri)
        return system

    def add_peer(self, uri):
        node = self.net.add_node(uri, self._store_factory())
        peer = KadopPeer(self, len(self.peers), node)
        self.peers.append(peer)
        self.catalog.register_peer(node, peer.index, uri)
        return peer

    # -- intensional resources (Section 6) ------------------------------------

    def register_resource(self, uri, xml_text):
        """Make ``uri`` resolvable as include target / function result."""
        self._resources[uri] = xml_text

    def resolver(self, uri):
        return self._resources.get(uri)

    def fundex_register(self, peer, doc_index, document):
        """Hook called by peers when they publish intensional documents."""
        self.fundex.register_document(peer, doc_index, document)

    # -- observability (repro.obs) ---------------------------------------------

    def enable_tracing(self, tracer=None, metrics=None):
        """Attach a span tracer + metrics registry to this network.

        Tracing is strictly observational: every answer, simulated second,
        and metered byte is identical with it on or off (the differential
        test in ``tests/test_obs.py`` asserts this on Pastry and Chord).
        Returns the tracer.
        """
        from repro.obs import MetricsRegistry, Tracer

        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.net.tracer = self.tracer
        self.net.metrics = self.metrics
        self.net.meter.bind_metrics(self.metrics)
        return self.tracer

    def disable_tracing(self):
        """Detach the observers installed by :meth:`enable_tracing`."""
        self.tracer = None
        self.metrics = None
        self.net.tracer = None
        self.net.metrics = None
        self.net.meter.bind_metrics(None)

    def enable_telemetry(
        self,
        sampler=None,
        interval_s=None,
        slo_objective_s=None,
        slo_target=0.99,
        slo_window_s=0.5,
    ):
        """Attach a serving-clock telemetry sampler to this network.

        The next :meth:`serve` run installs the stock probe set on it
        (queue depth, per-peer ledger rates, wire bytes, ...), samples on
        the serving clock, and closes it out at the makespan.  Passing
        ``slo_objective_s`` also attaches an
        :class:`~repro.obs.slo.SLOTracker` fed from query completions.
        Like tracing, telemetry is strictly observational: every answer,
        simulated second, and metered byte is identical with it on or
        off (asserted in ``tests/test_telemetry.py``).  Returns the
        sampler.
        """
        from repro.obs.telemetry import DEFAULT_INTERVAL_S, TelemetrySampler

        if sampler is None:
            slo = None
            if slo_objective_s is not None:
                from repro.obs.slo import SLOTracker

                slo = SLOTracker(
                    slo_objective_s, target=slo_target, window_s=slo_window_s
                )
            sampler = TelemetrySampler(
                interval_s=(
                    DEFAULT_INTERVAL_S if interval_s is None else interval_s
                ),
                slo=slo,
            )
        self.telemetry = sampler
        return sampler

    def disable_telemetry(self):
        """Detach the sampler installed by :meth:`enable_telemetry`."""
        self.telemetry = None

    # -- fault injection (repro.faults) -----------------------------------------

    def install_faults(self, plan):
        """Attach a :class:`~repro.faults.FaultPlan` to the deployment.

        Every DHT operation and fetch scheduler consults it from now on.
        Installing a plan with all rates at zero leaves answers, reports,
        and meter snapshots byte-identical to running without one (the
        differential test in ``tests/test_faults.py``).  Returns the plan.
        """
        self.net.faults = plan
        return plan

    def clear_faults(self):
        """Detach the plan installed by :meth:`install_faults`."""
        self.net.faults = None

    def repair(self):
        """Run one anti-entropy pass; returns the
        :class:`~repro.faults.RepairReport`."""
        return self.net.anti_entropy_repair()

    def crash_peer(self, peer):
        """Abruptly fail ``peer`` (disk kept, no handover)."""
        self.net.crash_node(peer.node)

    def restart_peer(self, peer):
        """Rejoin a crashed ``peer``, reconciling its stale state."""
        self.net.restart_node(peer.node)

    # -- queries ------------------------------------------------------------------

    def parse(self, query_text, keyword_steps=()):
        return parse_query(query_text, keyword_steps=keyword_steps)

    def query(self, query_text, keyword_steps=(), peer=None, strategy=None):
        """Run a query; returns the list of :class:`Answer`."""
        answers, _ = self.query_with_report(
            query_text, keyword_steps=keyword_steps, peer=peer, strategy=strategy
        )
        return answers

    def query_with_report(
        self, query_text, keyword_steps=(), peer=None, strategy=None
    ):
        """Run a query; returns ``(answers, QueryReport)``."""
        pattern = (
            query_text
            if hasattr(query_text, "root")
            else self.parse(query_text, keyword_steps)
        )
        src = peer or self.peers[0]
        return self.executor.run(pattern, src, strategy=strategy)

    def serve(self, arrivals, max_inflight=None, policy=None, coalesce=None):
        """Serve an open-loop query stream concurrently.

        ``arrivals`` is an iterable of
        :class:`~repro.kadop.serving.QueryArrival` (or ``(arrival_s,
        query_text[, keyword_steps[, src_peer_index]])`` tuples).  Queries
        run against one shared scheduler timeline — overlapping queries
        contend for per-peer links and CPU.  ``max_inflight`` / ``policy``
        / ``coalesce`` default to the config knobs when left at ``None``
        (``max_inflight=None`` therefore means "use the config bound";
        construct a :class:`~repro.kadop.serving.ServingEngine` directly
        to force unbounded admission over a bounded config).  Returns a
        :class:`~repro.kadop.serving.ServingResult`.
        """
        from repro.kadop.serving import _UNSET, ServingEngine

        engine = ServingEngine(
            self,
            max_inflight=_UNSET if max_inflight is None else max_inflight,
            policy=policy,
            coalesce=coalesce,
        )
        return engine.run(arrivals)

    def xquery(self, text, keyword_steps=(), peer=None, strategy=None):
        """Run a FLWOR query (the XQuery subset of Section 2).

        Returns ``(projected, report)`` where ``projected`` is the ordered,
        duplicate-free list of ``(peer, doc, Posting)`` bindings of the
        return expression."""
        from repro.query.xquery import compile_xquery

        compiled = compile_xquery(text, keyword_steps=keyword_steps)
        src = peer or self.peers[0]
        answers, report = self.executor.run(
            compiled.pattern, src, strategy=strategy
        )
        return compiled.project(answers), report

    # -- persistence -----------------------------------------------------------------

    def save(self, path):
        """Checkpoint the network to a JSON file.

        The checkpoint records the configuration, the registered
        intensional resources, and every published document (as XML text,
        in publish order).  :meth:`load` replays it deterministically —
        replay-based persistence keeps the on-disk format independent of
        every internal data structure."""
        import dataclasses
        import json

        from repro.xmldata.serializer import document_to_xml

        config = dataclasses.asdict(self.config)
        config["cost"] = dataclasses.asdict(self.config.cost)
        if config.get("word_index_labels") is not None:
            config["word_index_labels"] = sorted(config["word_index_labels"])
        docs = []
        for peer in self.peers:
            for doc_index in sorted(peer.documents):
                if doc_index in peer.functional_docs:
                    continue
                document = peer.documents[doc_index]
                docs.append(
                    {
                        "peer": peer.index,
                        "uri": document.uri,
                        "doc_type": document.doc_type,
                        "xml": document_to_xml(document),
                    }
                )
        state = {
            "format": 1,
            "num_peers": len(self.peers),
            "peer_uris": [p.uri for p in self.peers],
            "config": config,
            "resources": dict(self._resources),
            "documents": docs,
        }
        with open(path, "w") as handle:
            json.dump(state, handle)

    @classmethod
    def load(cls, path):
        """Rebuild a network from a :meth:`save` checkpoint."""
        import json

        from repro.sim.cost import CostParams

        with open(path) as handle:
            state = json.load(handle)
        if state.get("format") != 1:
            raise ValueError("unknown checkpoint format %r" % state.get("format"))
        config_dict = dict(state["config"])
        config_dict["cost"] = CostParams(**config_dict["cost"])
        if config_dict.get("word_index_labels") is not None:
            config_dict["word_index_labels"] = frozenset(
                config_dict["word_index_labels"]
            )
        system = cls(KadopConfig(**config_dict))
        for uri in state["peer_uris"]:
            node = system.net.add_node(uri, system._store_factory(), rebuild=False)
            system.peers.append(KadopPeer(system, len(system.peers), node))
        system.net._rebuild_routing()
        for peer in system.peers:
            system.catalog.register_peer(peer.node, peer.index, peer.uri)
        for uri, text in state["resources"].items():
            system.register_resource(uri, text)
        for entry in state["documents"]:
            system.peers[entry["peer"]].publish(
                entry["xml"], uri=entry["uri"], doc_type=entry["doc_type"]
            )
        return system

    # -- stats ----------------------------------------------------------------------

    @property
    def meter(self):
        return self.net.meter

    def document_count(self):
        return sum(len(p.documents) for p in self.peers)

    def __repr__(self):
        return "KadopNetwork(%d peers, %d docs)" % (
            len(self.peers),
            self.document_count(),
        )
